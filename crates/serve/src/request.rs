//! The service's request/response vocabulary.
//!
//! Three workloads, each backed by a paper algorithm running on the shared
//! persistent machine:
//!
//! * **hash** — set membership over 31-bit keys (§6 hashing: inserts are
//!   occupy-mode cell claims along a per-key probe sequence, lookups are
//!   one parallel probe step);
//! * **counter** — named counters (§7.3: a batch of adds/reads is one
//!   emulated Fetch&Add step, Lemma 7.5);
//! * **task** — a FIFO task pool (§3: every batch rebalances the pending
//!   tasks with the QRQW load-balancing algorithm).
//!
//! Every request receives exactly one [`Response`].  The reply semantics
//! are **trace-deterministic**: what a request observes depends only on
//! the requests that preceded it in submission order, never on how the
//! batcher happened to cut batches (see `crates/serve/tests/parity.rs`,
//! which pins this).

/// Upper bound (exclusive) for hash-workload keys: the field size of the
/// §6 hash functions.  Re-exported from `qrqw_core::hashing::HASH_PRIME`.
pub const MAX_KEY: u64 = qrqw_core::hashing::HASH_PRIME;

/// One client request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Request {
    /// Insert `key` into the hash set.  Replies [`Reply::Inserted`] with
    /// `true` iff no earlier request had inserted the key.
    HashInsert {
        /// The key to insert; must be `< MAX_KEY`.
        key: u64,
    },
    /// Membership query.  Replies [`Reply::Found`]: `true` iff some earlier
    /// request inserted the key.
    HashLookup {
        /// The key to look up; must be `< MAX_KEY`.
        key: u64,
    },
    /// Alias of [`Request::HashLookup`] kept as a distinct wire operation
    /// (some clients phrase membership as `contains`); identical semantics.
    HashContains {
        /// The key to test; must be `< MAX_KEY`.
        key: u64,
    },
    /// Remove `key` from the hash set.  Replies [`Reply::Removed`] with
    /// `true` iff the key was present at this point of the trace (i.e. some
    /// earlier insert is not yet cancelled by an earlier delete).  The
    /// machine-resident table tombstones the key's cell and purges
    /// tombstones on growth (see `qrqw_core::open_table`).
    HashDelete {
        /// The key to remove; must be `< MAX_KEY`.
        key: u64,
    },
    /// Atomically add `delta` to counter `counter`.  Replies
    /// [`Reply::Counter`] with the value the counter held just before this
    /// request's addition (Fetch&Add semantics).
    CounterAdd {
        /// Counter index; must be below the service's counter count.
        counter: usize,
        /// Amount to add.
        delta: u64,
    },
    /// Read counter `counter` (a zero-delta Fetch&Add).  Replies
    /// [`Reply::Counter`] with the sum of all earlier adds.
    CounterRead {
        /// Counter index; must be below the service's counter count.
        counter: usize,
    },
    /// Submit a task.  Replies [`Reply::TaskQueued`] with the task's
    /// globally unique FIFO sequence number.
    TaskSubmit {
        /// Opaque task payload.
        payload: u64,
    },
    /// Steal (pop) the oldest pending task.  Replies [`Reply::TaskStolen`]
    /// with `Some((seq, payload))`, or `None` if no task submitted by an
    /// earlier request is still pending.
    TaskSteal,
    /// Fault injection, for the error-path tests: the service must survive
    /// these without wedging the batcher thread.
    Fault(Fault),
}

/// Kinds of injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// The request itself fails with [`ServiceError::Injected`]; the rest
    /// of its batch is unaffected.
    Error,
    /// Batch application panics while this request is being decoded.  The
    /// batcher rolls the service back to its pre-batch checkpoint and
    /// replays the batch by bisection, so *only this request* fails — with
    /// [`ServiceError::RequestPanicked`] — every innocent request in the
    /// batch gets its real answer, and no effect of the panicked attempt
    /// survives.  (Direct `apply_batch` callers see the panic itself.)
    Panic,
    /// The batcher thread dies abnormally — outside its panic containment,
    /// with no rollback.  This simulates a crashed server rather than a
    /// poisoned request: every outstanding request, including this one,
    /// resolves to [`ServiceError::ServerGone`] via the envelope exit
    /// guard instead of wedging its client.
    Crash,
}

impl Request {
    /// The workload this request belongs to (`"hash"` / `"counter"` /
    /// `"task"` / `"fault"`), for metrics labelling.
    pub fn workload(&self) -> &'static str {
        match self {
            Request::HashInsert { .. }
            | Request::HashLookup { .. }
            | Request::HashContains { .. }
            | Request::HashDelete { .. } => "hash",
            Request::CounterAdd { .. } | Request::CounterRead { .. } => "counter",
            Request::TaskSubmit { .. } | Request::TaskSteal => "task",
            Request::Fault(_) => "fault",
        }
    }
}

/// The payload of a successful response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Reply {
    /// Hash insert: `true` iff the key was newly inserted.
    Inserted(bool),
    /// Hash delete: `true` iff the key was present and is now removed.
    Removed(bool),
    /// Hash lookup / contains verdict.
    Found(bool),
    /// Counter value observed just before this request's (possibly zero)
    /// addition.
    Counter(u64),
    /// Task submitted; carries its FIFO sequence number.
    TaskQueued(u64),
    /// Steal outcome: the oldest pending `(seq, payload)`, if any.
    TaskStolen(Option<(u64, u64)>),
}

/// Why a request failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceError {
    /// Hash key is `>= MAX_KEY`.
    KeyOutOfRange(u64),
    /// Counter index is out of range for the service's configuration.
    UnknownCounter(usize),
    /// The request was a [`Fault::Error`] injection.
    Injected,
    /// This request made batch application panic.  The batcher restored
    /// the pre-batch checkpoint and replayed the batch by bisection, so
    /// the request **definitely did not** take effect — and every other
    /// request in its batch got its real answer.
    RequestPanicked,
    /// Shed at admission: the service already holds `queue_max`
    /// outstanding requests (see `QRQW_QUEUE_MAX`).  The request was never
    /// enqueued and definitely did not take effect.
    Overloaded,
    /// The request's deadline expired before its batch was applied; it was
    /// answered without touching the machine and definitely did not take
    /// effect.
    DeadlineExceeded,
    /// The batcher thread died before applying this request (abnormal
    /// server death).  The request did not take effect; the envelope exit
    /// guard resolves the ticket instead of wedging the client forever.
    ServerGone,
    /// The server is shutting down and no longer accepts requests.
    ShuttingDown,
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::KeyOutOfRange(k) => write!(f, "key {k} is >= 2^31 - 1"),
            ServiceError::UnknownCounter(c) => write!(f, "counter {c} does not exist"),
            ServiceError::Injected => write!(f, "injected fault"),
            ServiceError::RequestPanicked => {
                write!(f, "request panicked mid-application and was rolled back")
            }
            ServiceError::Overloaded => write!(f, "submission queue is full, request shed"),
            ServiceError::DeadlineExceeded => write!(f, "deadline expired before the batch ran"),
            ServiceError::ServerGone => write!(f, "batcher thread died before answering"),
            ServiceError::ShuttingDown => write!(f, "server is shutting down"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// What a client gets back for one request.
pub type Response = Result<Reply, ServiceError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_labels_cover_every_variant() {
        assert_eq!(Request::HashInsert { key: 1 }.workload(), "hash");
        assert_eq!(Request::HashContains { key: 1 }.workload(), "hash");
        assert_eq!(Request::HashDelete { key: 1 }.workload(), "hash");
        assert_eq!(
            Request::CounterAdd {
                counter: 0,
                delta: 1
            }
            .workload(),
            "counter"
        );
        assert_eq!(Request::TaskSteal.workload(), "task");
        assert_eq!(Request::Fault(Fault::Error).workload(), "fault");
    }

    #[test]
    fn errors_render_a_reason() {
        let s = ServiceError::KeyOutOfRange(7).to_string();
        assert!(s.contains('7'));
        assert!(!ServiceError::ShuttingDown.to_string().is_empty());
    }
}
