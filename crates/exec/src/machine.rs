//! [`NativeMachine`]: the native shared-memory implementation of the
//! [`Machine`] backend API.
//!
//! Shared memory is a flat arena of [`AtomicU64`] cells; a step fans its
//! virtual processors out over real threads (threads contending on atomic
//! cells play the role of the MasPar router queues of the Section 5.2
//! experiment).  The backend keeps the full `Machine` contract:
//!
//! * every step is a barrier (the thread pool joins before the step
//!   returns), so steps are synchronous;
//! * per-processor randomness comes from the same
//!   [`qrqw_sim::rng::proc_rng`] streams as the simulator, and every
//!   operation advances the step index by the amount the contract
//!   prescribes, so the same algorithm draws the same random numbers on
//!   both backends;
//! * [`Machine::claim`] is implemented with compare-and-swap: a probe pass,
//!   a CAS pass, and (for [`ClaimMode::Exclusive`]) a poison pass plus a
//!   verify-and-restore pass, separated by barriers.  Exclusive claims are
//!   therefore exactly as deterministic as on the simulator — an attempt
//!   succeeds iff it is the only live claim on its cell — while occupy
//!   claims hand the cell to whichever thread wins the CAS.
//!
//! What the simulator measures as queue contention, this backend *observes*:
//! the [`ContentionCounter`] records every live claim that lost its cell to
//! a same-step collision, and [`Machine::cost_report`] reports wall-clock
//! time plus that count.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use rand::rngs::SmallRng;
use rand::Rng;
use rayon::prelude::*;

use qrqw_sim::proc_rng;
use qrqw_sim::{ClaimMode, CostReport, Machine, MachineProc, EMPTY};

use crate::contention::ContentionCounter;

/// Sentinel written by exclusive-claim losers so the CAS winner can detect
/// that its cell was contested.  Claim tags must stay below this value
/// (every tag in the repository is an index-derived value far below it).
const POISON: u64 = u64::MAX - 1;

/// The native rayon/atomics [`Machine`] backend.
pub struct NativeMachine {
    cells: Vec<AtomicU64>,
    seed: u64,
    steps_executed: u64,
    heap_top: usize,
    counter: ContentionCounter,
    created: Instant,
}

impl NativeMachine {
    /// Creates a machine with `mem_size` cells (all [`EMPTY`]) and seed 0.
    pub fn new(mem_size: usize) -> Self {
        Machine::with_seed(mem_size, 0)
    }

    /// The contention instrumentation of this machine.
    pub fn contention(&self) -> &ContentionCounter {
        &self.counter
    }

    fn grow(&mut self, size: usize) {
        if self.cells.len() < size {
            self.cells.resize_with(size, || AtomicU64::new(EMPTY));
        }
    }
}

impl std::fmt::Debug for NativeMachine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NativeMachine")
            .field("cells", &self.cells.len())
            .field("seed", &self.seed)
            .field("steps_executed", &self.steps_executed)
            .field("heap_top", &self.heap_top)
            .finish()
    }
}

/// Per-processor context handed to step closures by [`NativeMachine`].
struct NativeProc<'a> {
    cells: &'a [AtomicU64],
    seed: u64,
    step_idx: u64,
    proc: u64,
    rng: Option<SmallRng>,
}

impl MachineProc for NativeProc<'_> {
    fn proc_id(&self) -> u64 {
        self.proc
    }

    fn read(&mut self, addr: usize) -> u64 {
        assert!(
            addr < self.cells.len(),
            "read of address {addr} outside shared memory of size {}",
            self.cells.len()
        );
        self.cells[addr].load(Ordering::Relaxed)
    }

    fn write(&mut self, addr: usize, value: u64) {
        assert!(
            addr < self.cells.len(),
            "write of address {addr} outside shared memory of size {}",
            self.cells.len()
        );
        self.cells[addr].store(value, Ordering::Relaxed);
    }

    fn compute(&mut self, _ops: u64) {}

    fn random_index(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "random_index bound must be positive");
        if self.rng.is_none() {
            self.rng = Some(proc_rng(self.seed, self.step_idx, self.proc));
        }
        self.rng.as_mut().unwrap().gen_range(0..bound)
    }
}

impl Machine for NativeMachine {
    fn with_seed(mem_size: usize, seed: u64) -> Self {
        let mut cells = Vec::new();
        cells.resize_with(mem_size, || AtomicU64::new(EMPTY));
        NativeMachine {
            cells,
            seed,
            steps_executed: 0,
            heap_top: mem_size,
            counter: ContentionCounter::new(),
            created: Instant::now(),
        }
    }

    fn backend(&self) -> &'static str {
        "native"
    }

    fn seed(&self) -> u64 {
        self.seed
    }

    fn steps_executed(&self) -> u64 {
        self.steps_executed
    }

    fn ensure_memory(&mut self, size: usize) {
        self.grow(size);
        self.heap_top = self.heap_top.max(size);
    }

    fn alloc(&mut self, len: usize) -> usize {
        let base = self.heap_top;
        self.heap_top += len;
        self.grow(self.heap_top);
        Machine::clear_region(self, base, len);
        base
    }

    fn release_to(&mut self, base: usize) {
        assert!(base <= self.heap_top, "release_to past the allocation top");
        self.heap_top = base;
    }

    fn heap_top(&self) -> usize {
        self.heap_top
    }

    fn load(&mut self, base: usize, values: &[u64]) {
        self.grow(base + values.len());
        for (i, &v) in values.iter().enumerate() {
            self.cells[base + i].store(v, Ordering::Relaxed);
        }
    }

    fn dump(&self, base: usize, len: usize) -> Vec<u64> {
        (base..base + len)
            .map(|a| self.cells[a].load(Ordering::Relaxed))
            .collect()
    }

    fn peek(&self, addr: usize) -> u64 {
        self.cells[addr].load(Ordering::Relaxed)
    }

    fn poke(&mut self, addr: usize, value: u64) {
        self.cells[addr].store(value, Ordering::Relaxed);
    }

    fn clear_region(&mut self, base: usize, len: usize) {
        self.grow(base + len);
        for a in base..base + len {
            self.cells[a].store(EMPTY, Ordering::Relaxed);
        }
    }

    fn par_map<T, F>(&mut self, procs: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize, &mut dyn MachineProc) -> T + Sync,
    {
        let step_idx = self.steps_executed;
        let seed = self.seed;
        let cells = &self.cells[..];
        let out: Vec<T> = (0..procs)
            .into_par_iter()
            .map(|p| {
                let mut ctx = NativeProc {
                    cells,
                    seed,
                    step_idx,
                    proc: p as u64,
                    rng: None,
                };
                f(p, &mut ctx)
            })
            .collect();
        self.steps_executed += 1;
        out
    }

    fn seq_step<T, F>(&mut self, f: F) -> T
    where
        F: FnOnce(&mut dyn MachineProc) -> T,
    {
        // A native thread's reads already see its own earlier stores, so the
        // sequential step is simply one processor run inline on the caller's
        // thread — the contract's step-index and RNG-stream advances are the
        // same as for a one-processor parallel step.
        let step_idx = self.steps_executed;
        let mut ctx = NativeProc {
            cells: &self.cells[..],
            seed: self.seed,
            step_idx,
            proc: 0,
            rng: None,
        };
        let result = f(&mut ctx);
        self.steps_executed += 1;
        result
    }

    fn scan_step(&mut self, base: usize, len: usize) -> u64 {
        self.grow(base + len);
        const CHUNK: usize = 8192;
        let nchunks = len.div_ceil(CHUNK);
        let cells = &self.cells[..];
        let val = |i: usize| {
            let v = cells[base + i].load(Ordering::Relaxed);
            if v == EMPTY {
                0
            } else {
                v
            }
        };
        // Two-pass parallel prefix: per-chunk totals, an exclusive scan of
        // those totals on the host, then a parallel fill of each chunk.
        let mut offsets: Vec<u64> = (0..nchunks)
            .into_par_iter()
            .map(|c| {
                let lo = c * CHUNK;
                let hi = ((c + 1) * CHUNK).min(len);
                (lo..hi).map(val).sum()
            })
            .collect();
        let mut acc = 0u64;
        for o in offsets.iter_mut() {
            let t = *o;
            *o = acc;
            acc += t;
        }
        let offsets = &offsets;
        (0..nchunks).into_par_iter().for_each(|c| {
            let lo = c * CHUNK;
            let hi = ((c + 1) * CHUNK).min(len);
            let mut run = offsets[c];
            for i in lo..hi {
                run += val(i);
                cells[base + i].store(run, Ordering::Relaxed);
            }
        });
        self.steps_executed += 1;
        acc
    }

    fn global_or_step(&mut self, base: usize, len: usize) -> bool {
        self.grow(base + len);
        let cells = &self.cells[..];
        let any = (0..len).into_par_iter().any(|i| {
            let v = cells[base + i].load(Ordering::Relaxed);
            v != 0 && v != EMPTY
        });
        self.steps_executed += 1;
        any
    }

    fn claim(&mut self, attempts: &[(u64, usize)], mode: ClaimMode) -> Vec<bool> {
        let k = attempts.len();
        if k == 0 {
            return Vec::new();
        }
        debug_assert!(
            attempts
                .iter()
                .all(|&(tag, _)| tag != EMPTY && tag != POISON),
            "claim tags must differ from the EMPTY and POISON sentinels"
        );
        if let Some(max_addr) = attempts.iter().map(|&(_, a)| a).max() {
            self.ensure_memory(max_addr + 1);
        }
        let cells = &self.cells[..];

        // Probe pass: all probes complete (barrier) before any CAS, so a
        // pre-occupied cell rejects every claim, matching the simulator's
        // snapshot-read S1.
        let live: Vec<bool> = (0..k)
            .into_par_iter()
            .map(|i| cells[attempts[i].1].load(Ordering::Acquire) == EMPTY)
            .collect();

        // CAS pass: live claimants race for their cells.
        let cas_won: Vec<bool> = (0..k)
            .into_par_iter()
            .map(|i| {
                live[i]
                    && cells[attempts[i].1]
                        .compare_exchange(EMPTY, attempts[i].0, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
            })
            .collect();

        let success = match mode {
            ClaimMode::Occupy => {
                self.steps_executed += 3;
                cas_won
            }
            ClaimMode::Exclusive => {
                // Poison pass: every live loser marks its (necessarily
                // CAS-won) cell as contested.
                (0..k).into_par_iter().for_each(|i| {
                    if live[i] && !cas_won[i] {
                        cells[attempts[i].1].store(POISON, Ordering::Release);
                    }
                });
                // Verify-and-restore pass: a CAS winner whose tag survived
                // was the unique claimant; a poisoned cell is released.
                let success: Vec<bool> = (0..k)
                    .into_par_iter()
                    .map(|i| {
                        if !cas_won[i] {
                            return false;
                        }
                        if cells[attempts[i].1].load(Ordering::Acquire) == attempts[i].0 {
                            true
                        } else {
                            cells[attempts[i].1].store(EMPTY, Ordering::Release);
                            false
                        }
                    })
                    .collect();
                self.steps_executed += 6;
                success
            }
        };

        for i in 0..k {
            if live[i] {
                self.counter.record(!success[i]);
            }
        }
        success
    }

    fn cost_report(&self) -> CostReport {
        CostReport {
            backend: "native",
            steps: self.steps_executed,
            wall: self.created.elapsed(),
            claim_attempts: self.counter.attempts(),
            contended_claims: self.counter.failures(),
            work: None,
            max_contention: None,
            time_qrqw: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_runs_all_processors_in_order() {
        let mut m = NativeMachine::new(16);
        let out = m.par_map(5000, |p, ctx| {
            ctx.write(p % 16, p as u64);
            p * 2
        });
        assert_eq!(out.len(), 5000);
        assert_eq!(out[1234], 2468);
        assert_eq!(m.steps_executed, 1);
    }

    #[test]
    fn scan_step_matches_sequential_prefix() {
        let mut m = NativeMachine::new(0);
        let n = 20_000usize;
        let vals: Vec<u64> = (0..n as u64).map(|i| i % 7).collect();
        Machine::ensure_memory(&mut m, n);
        Machine::load(&mut m, 0, &vals);
        let total = m.scan_step(0, n);
        assert_eq!(total, vals.iter().sum::<u64>());
        let got = Machine::dump(&m, 0, n);
        let mut acc = 0u64;
        for i in 0..n {
            acc += vals[i];
            assert_eq!(got[i], acc, "mismatch at {i}");
        }
    }

    #[test]
    fn scan_step_treats_empty_as_zero() {
        let mut m = NativeMachine::new(4);
        Machine::poke(&mut m, 1, 5);
        assert_eq!(m.scan_step(0, 4), 5);
        assert_eq!(Machine::dump(&m, 0, 4), vec![0, 5, 5, 5]);
    }

    #[test]
    fn global_or_detects_any_nonzero() {
        let mut m = NativeMachine::new(5000);
        assert!(!m.global_or_step(0, 5000));
        Machine::poke(&mut m, 4321, 9);
        assert!(m.global_or_step(0, 5000));
    }

    #[test]
    fn exclusive_claim_is_deterministic_and_restores_contested_cells() {
        let mut m = NativeMachine::new(8);
        let ok = m.claim(&[(1, 4), (2, 4), (3, 4), (4, 6)], ClaimMode::Exclusive);
        assert_eq!(ok, vec![false, false, false, true]);
        assert_eq!(
            Machine::peek(&m, 4),
            EMPTY,
            "contested cell must be restored"
        );
        assert_eq!(Machine::peek(&m, 6), 4);
        assert_eq!(m.steps_executed, 6);
        assert_eq!(m.contention().failures(), 3);
    }

    #[test]
    fn occupy_claim_lets_exactly_one_winner_through() {
        let mut m = NativeMachine::new(8);
        let attempts = vec![(10u64, 4usize), (11, 4), (12, 4)];
        let ok = m.claim(&attempts, ClaimMode::Occupy);
        assert_eq!(ok.iter().filter(|&&b| b).count(), 1);
        let winner = ok.iter().position(|&b| b).unwrap();
        assert_eq!(Machine::peek(&m, 4), attempts[winner].0);
        assert_eq!(m.steps_executed, 3);
    }

    #[test]
    fn occupied_cells_reject_claims_in_both_modes() {
        for mode in [ClaimMode::Exclusive, ClaimMode::Occupy] {
            let mut m = NativeMachine::new(8);
            Machine::poke(&mut m, 2, 55);
            assert_eq!(m.claim(&[(77, 2)], mode), vec![false]);
            assert_eq!(Machine::peek(&m, 2), 55);
        }
    }

    #[test]
    fn alloc_and_release_behave_like_a_stack() {
        let mut m = NativeMachine::new(8);
        let a = Machine::alloc(&mut m, 4);
        assert_eq!(a, 8);
        let b = Machine::alloc(&mut m, 2);
        assert_eq!(b, 12);
        Machine::release_to(&mut m, b);
        let c = Machine::alloc(&mut m, 3);
        assert_eq!(c, 12);
        assert!(Machine::dump(&m, c, 3).iter().all(|&v| v == EMPTY));
    }

    #[test]
    fn seq_step_reads_own_writes_and_advances_one_step() {
        let mut m = NativeMachine::new(8);
        let observed = m.seq_step(|ctx| {
            ctx.write(3, 41);
            let fresh = ctx.read(3);
            ctx.write(3, fresh + 1);
            ctx.read(3)
        });
        assert_eq!(observed, 42);
        assert_eq!(Machine::peek(&m, 3), 42);
        assert_eq!(m.steps_executed, 1);
    }

    #[test]
    fn seq_step_random_stream_matches_the_simulator() {
        let mut native = NativeMachine::with_seed(4, 31);
        let a = native.seq_step(|ctx| ctx.random_index(1 << 20));
        let b = native.seq_step(|ctx| ctx.random_index(1 << 20));
        let mut sim = qrqw_sim::Pram::with_seed(4, 31);
        let c = Machine::seq_step(&mut sim, |ctx| ctx.random_index(1 << 20));
        let d = Machine::seq_step(&mut sim, |ctx| ctx.random_index(1 << 20));
        assert_eq!((a, b), (c, d));
    }

    #[test]
    fn random_streams_match_the_simulator() {
        // The same (seed, step, proc) coordinates must give the same draws
        // on both backends — the cornerstone of cross-backend parity.
        let mut native = NativeMachine::with_seed(4, 77);
        let native_draws = native.par_map(64, |_p, ctx| ctx.random_index(1000));
        let mut sim = qrqw_sim::Pram::with_seed(4, 77);
        let sim_draws = Machine::par_map(&mut sim, 64, |_p, ctx| ctx.random_index(1000));
        assert_eq!(native_draws, sim_draws);
    }
}
