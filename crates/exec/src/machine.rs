//! [`NativeMachine`]: the native shared-memory implementation of the
//! [`Machine`] backend API.
//!
//! Shared memory is a flat arena of [`AtomicU64`] cells; a step fans its
//! virtual processors out over real threads (threads contending on atomic
//! cells play the role of the MasPar router queues of the Section 5.2
//! experiment).  The backend keeps the full `Machine` contract:
//!
//! * every step is a barrier (the pool dispatch joins before the step
//!   returns), so steps are synchronous;
//! * per-processor randomness comes from the same
//!   [`qrqw_sim::rng::proc_rng`] streams as the simulator, and every
//!   operation advances the step index by the amount the contract
//!   prescribes, so the same algorithm draws the same random numbers on
//!   both backends;
//! * [`Machine::claim`] is implemented with compare-and-swap: a probe pass,
//!   a CAS pass, and (for [`ClaimMode::Exclusive`]) a poison pass plus a
//!   verify-and-restore pass, separated by barriers.  Exclusive claims are
//!   therefore exactly as deterministic as on the simulator — an attempt
//!   succeeds iff it is the only live claim on its cell — while occupy
//!   claims hand the cell to whichever thread wins the CAS.
//!
//! # Execution hot path
//!
//! Steps never spawn threads and (after warm-up) never touch the heap for
//! scratch state:
//!
//! * shared memory is a sharded `Arena` (see [`crate::arena`]):
//!   cache-line-aligned [`crate::arena::SHARD_CELLS`]-cell shards behind a flat pointer
//!   table, addressed by shift+mask — growth *appends* shards, it never
//!   moves existing cells (no realloc copy, no transient 2× footprint);
//! * dispatch goes through [`StepPool`] to the process-wide persistent
//!   worker pool — parked threads, one wake per step, contiguous chunks
//!   claimed dynamically;
//! * each chunk runs one `NativeProc` context with one lazily re-seeded
//!   RNG slot, re-pointed per virtual processor, instead of constructing a
//!   context per processor;
//! * `claim` keeps its `live` / `cas_won` pass state in reusable
//!   bitset-backed scratch buffers (one bit per attempt, chunk boundaries
//!   word-aligned so chunks own whole words), and aggregates contention
//!   bookkeeping per chunk into two atomic adds via
//!   [`ContentionCounter::add`];
//! * `scan_step` keeps its per-block offset table in reusable scratch;
//! * bulk memory traffic (`load` / `dump` / `clear_region` and arena
//!   growth) is a parallel fill above the inline cutoff.
//!
//! The only per-call allocations left are the result vectors the `Machine`
//! API returns by value (`par_map`'s outputs, `claim`'s success flags),
//! written in place exactly once.  Thread count comes from
//! [`NativeMachine::with_threads`] or the `QRQW_THREADS` environment
//! variable; chunk boundaries never affect what is computed for an index,
//! so outputs of deterministic algorithms are bit-identical at any thread
//! count.
//!
//! What the simulator measures as queue contention, this backend *observes*:
//! the [`ContentionCounter`] records every live claim that lost its cell to
//! a same-step collision, and [`Machine::cost_report`] reports wall-clock
//! time plus that count.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

use rand::rngs::SmallRng;
use rand::Rng;

use qrqw_sim::proc_rng;
use qrqw_sim::{ClaimMode, CostReport, Machine, MachineProc, EMPTY};

use crate::arena::{Arena, ArenaStats};
use crate::contention::ContentionCounter;
use crate::pool::{Schedule, SendPtr, StepPool};

/// Sentinel written by exclusive-claim losers so the CAS winner can detect
/// that its cell was contested.  Claim tags must stay below this value
/// (every tag in the repository is an index-derived value far below it).
const POISON: u64 = u64::MAX - 1;

/// Cells per block of the two-pass parallel prefix in
/// [`Machine::scan_step`]; also the chunk alignment of its dispatches, so
/// every block belongs to exactly one chunk.
const SCAN_BLOCK: usize = 8192;

/// How often the `global_or_step` scan re-polls the shared "found" flag.
const OR_POLL_MASK: usize = 0x1FF;

/// How far ahead the claim passes prefetch their (randomly scattered)
/// target cells — the passes are memory-latency-bound, not compute-bound.
const PREFETCH_DIST: usize = 16;

/// Reusable step-pass scratch: grown on demand, never shrunk, so steady
/// workloads stop allocating after their first step of each shape.
#[derive(Default)]
struct Scratch {
    /// Claim pass: bit `i` set iff attempt `i` probed its cell [`EMPTY`].
    live: Vec<AtomicU64>,
    /// Claim pass: bit `i` set iff attempt `i` won its compare-and-swap.
    cas_won: Vec<AtomicU64>,
    /// Scan pass: per-[`SCAN_BLOCK`] totals, then exclusive offsets.
    offsets: Vec<AtomicU64>,
}

fn ensure_words(buf: &mut Vec<AtomicU64>, words: usize) {
    if buf.len() < words {
        buf.resize_with(words, || AtomicU64::new(0));
    }
}

/// The native pooled-threads/atomics [`Machine`] backend.
pub struct NativeMachine {
    arena: Arena,
    seed: u64,
    steps_executed: u64,
    heap_top: usize,
    counter: ContentionCounter,
    created: Instant,
    pool: StepPool,
    scratch: Scratch,
}

impl NativeMachine {
    /// Creates a machine with `mem_size` cells (all [`EMPTY`]) and seed 0.
    pub fn new(mem_size: usize) -> Self {
        Machine::with_seed(mem_size, 0)
    }

    /// Creates a machine with an explicit thread count, overriding both the
    /// host parallelism default and the `QRQW_THREADS` environment variable
    /// (see [`crate::pool::THREADS_ENV`]).  The schedule still follows
    /// `QRQW_SCHEDULE`.
    pub fn with_threads(mem_size: usize, seed: u64, threads: usize) -> Self {
        Self::build(mem_size, seed, StepPool::with_threads(threads))
    }

    /// Creates a machine with an explicit chunk [`Schedule`], overriding
    /// the `QRQW_SCHEDULE` environment selection (threads still resolve
    /// from `QRQW_THREADS` / host parallelism).
    pub fn with_schedule(mem_size: usize, seed: u64, schedule: Schedule) -> Self {
        Self::build(mem_size, seed, StepPool::from_env().with_schedule(schedule))
    }

    /// Creates a machine with a fully explicit dispatch policy — thread
    /// count *and* schedule (e.g.
    /// `StepPool::with_threads(4).with_schedule(Schedule::Stealing)`).
    pub fn with_pool(mem_size: usize, seed: u64, pool: StepPool) -> Self {
        Self::build(mem_size, seed, pool)
    }

    /// Number of threads (including the caller) this machine's steps use.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// The chunk→thread assignment discipline this machine's steps use.
    pub fn schedule(&self) -> Schedule {
        self.pool.schedule()
    }

    /// The backend name this machine reports: the schedule is part of the
    /// identity (`"native"` for chunked dispatch, `"native-steal"` for
    /// work-stealing), so harness rows and parity drift guards distinguish
    /// the two execution modes.
    fn backend_name(&self) -> &'static str {
        match self.pool.schedule() {
            Schedule::Chunked => "native",
            Schedule::Stealing => "native-steal",
        }
    }

    /// The contention instrumentation of this machine.
    pub fn contention(&self) -> &ContentionCounter {
        &self.counter
    }

    fn build(mem_size: usize, seed: u64, pool: StepPool) -> Self {
        let mut machine = NativeMachine {
            arena: Arena::default(),
            seed,
            steps_executed: 0,
            heap_top: mem_size,
            counter: ContentionCounter::new(),
            created: Instant::now(),
            pool,
            scratch: Scratch::default(),
        };
        machine.grow(mem_size);
        machine
    }

    fn grow(&mut self, size: usize) {
        if size <= self.arena.len() {
            return;
        }
        // Append whole shards (existing cells never move — see the
        // grow-without-move invariant in `crate::arena`) and EMPTY-fill
        // only the fresh ones, parallelized over the step pool.
        let fresh = self.arena.reserve_shards(size);
        if !fresh.is_empty() {
            let arena = &self.arena;
            let base = fresh.start;
            self.pool.dispatch(fresh.len(), 1, |lo, hi| {
                // Safety: disjoint chunks fill disjoint cell ranges of
                // still-unpublished shards; `&mut self` rules out any
                // concurrent access to the arena.
                unsafe { arena.fill_empty(base + lo, hi - lo) };
            });
        }
        self.arena.set_len(size);
    }

    /// The shape of the sharded arena (logical cells, allocated shards).
    pub fn arena_stats(&self) -> ArenaStats {
        self.arena.stats()
    }

    /// Copies the machine's observable state — the live cell prefix
    /// `[0, heap_top)` plus the step and contention counters — into `snap`,
    /// reusing its buffer (a warm snapshot of a steady working set does not
    /// allocate).  The copy is pool-parallel, walking shard segments like
    /// [`Machine::dump`].
    ///
    /// The RNG needs no saving: random draws are a pure function of
    /// `(seed, step_idx, proc)`, so restoring `steps_executed` restores
    /// every random stream exactly.
    pub fn snapshot_into(&self, snap: &mut crate::handle::MachineSnapshot) {
        let len = self.heap_top;
        debug_assert!(len <= self.arena.len(), "allocation top above the arena");
        snap.cells.clear();
        snap.cells.reserve(len);
        let arena = &self.arena;
        let slots = SendPtr(snap.cells.as_mut_ptr());
        let slots = &slots;
        self.pool.dispatch(len, 1, |lo, hi| {
            // Safety: bulk copy out of the quiescent arena (no step is
            // running; `&self` here, every writer needs `&mut self`) into
            // disjoint slots of the reserved buffer.
            unsafe { arena.copy_out(lo, slots.0.add(lo), hi - lo) };
        });
        unsafe { snap.cells.set_len(len) };
        snap.heap_top = self.heap_top;
        snap.steps_executed = self.steps_executed;
        snap.attempts = self.counter.attempts();
        snap.failures = self.counter.failures();
    }

    /// Rolls the machine back to `snap`: the cell prefix is copied back in,
    /// every cell above the snapshot's allocation top reads [`EMPTY`] again,
    /// and the step/contention counters rewind — so post-restore execution
    /// (including its random draws) is indistinguishable from execution
    /// that started at the snapshot point.
    ///
    /// The arena itself never shrinks (shards stay allocated); only the
    /// logical contents roll back.
    ///
    /// # Panics
    ///
    /// If `snap` spans more cells than this machine's arena holds — i.e. it
    /// was not taken from this machine.
    pub fn restore(&mut self, snap: &crate::handle::MachineSnapshot) {
        assert!(
            snap.heap_top <= self.arena.len(),
            "snapshot spans {} cells but the arena holds {}: not a snapshot of this machine",
            snap.heap_top,
            self.arena.len()
        );
        debug_assert_eq!(snap.cells.len(), snap.heap_top);
        let arena = &self.arena;
        let cells = &snap.cells[..];
        self.pool.dispatch(cells.len(), 1, |lo, hi| {
            // Safety: shard-segment bulk copy; `&mut self` rules out
            // concurrent cell access, chunks are disjoint.
            unsafe { arena.copy_in(lo, &cells[lo..hi]) };
        });
        // Cells the rolled-back execution allocated above the snapshot's
        // top must read EMPTY again, exactly as a fresh allocation would
        // find them.
        let tail = self.arena.len() - snap.heap_top;
        let base = snap.heap_top;
        self.pool.dispatch(tail, 1, |lo, hi| {
            // Safety: all-ones byte fill == EMPTY fill; same aliasing
            // argument as above.
            unsafe { arena.fill_empty(base + lo, hi - lo) };
        });
        self.heap_top = snap.heap_top;
        self.steps_executed = snap.steps_executed;
        self.counter.store(snap.attempts, snap.failures);
    }

    /// Raw scratch-buffer addresses, for the allocation-stability tests: a
    /// warm machine must keep these fixed across steps.
    #[doc(hidden)]
    pub fn scratch_fingerprint(&self) -> (usize, usize, usize) {
        (
            self.scratch.live.as_ptr() as usize,
            self.scratch.cas_won.as_ptr() as usize,
            self.scratch.offsets.as_ptr() as usize,
        )
    }

    /// Raw address of the cell backing `addr`, for the no-move and
    /// alignment assertions of the test suite.
    #[doc(hidden)]
    pub fn cell_addr(&self, addr: usize) -> usize {
        self.arena.cell_addr(addr)
    }
}

impl std::fmt::Debug for NativeMachine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NativeMachine")
            .field("cells", &self.arena.len())
            .field("shards", &self.arena.stats().shards)
            .field("seed", &self.seed)
            .field("steps_executed", &self.steps_executed)
            .field("heap_top", &self.heap_top)
            .field("threads", &self.pool.threads())
            .field("schedule", &self.pool.schedule())
            .finish()
    }
}

/// Per-chunk context handed to step closures by [`NativeMachine`].  One
/// context serves every virtual processor of its chunk: the dispatch loop
/// re-points `proc` (and clears the lazily-seeded `rng` slot) per
/// processor, so the observable behaviour is identical to a context per
/// processor without the per-processor setup.
struct NativeProc<'a> {
    arena: &'a Arena,
    seed: u64,
    step_idx: u64,
    proc: u64,
    rng: Option<SmallRng>,
}

impl MachineProc for NativeProc<'_> {
    fn proc_id(&self) -> u64 {
        self.proc
    }

    fn read(&mut self, addr: usize) -> u64 {
        assert!(
            addr < self.arena.len(),
            "read of address {addr} outside shared memory of size {}",
            self.arena.len()
        );
        self.arena.cell(addr).load(Ordering::Relaxed)
    }

    fn write(&mut self, addr: usize, value: u64) {
        assert!(
            addr < self.arena.len(),
            "write of address {addr} outside shared memory of size {}",
            self.arena.len()
        );
        self.arena.cell(addr).store(value, Ordering::Relaxed);
    }

    fn compute(&mut self, _ops: u64) {}

    fn random_index(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "random_index bound must be positive");
        if self.rng.is_none() {
            self.rng = Some(proc_rng(self.seed, self.step_idx, self.proc));
        }
        self.rng.as_mut().unwrap().gen_range(0..bound)
    }
}

impl Machine for NativeMachine {
    fn with_seed(mem_size: usize, seed: u64) -> Self {
        Self::build(mem_size, seed, StepPool::from_env())
    }

    fn backend(&self) -> &'static str {
        self.backend_name()
    }

    fn seed(&self) -> u64 {
        self.seed
    }

    fn steps_executed(&self) -> u64 {
        self.steps_executed
    }

    fn ensure_memory(&mut self, size: usize) {
        self.grow(size);
        self.heap_top = self.heap_top.max(size);
    }

    fn alloc(&mut self, len: usize) -> usize {
        let base = self.heap_top;
        self.heap_top = base.checked_add(len).unwrap_or_else(|| {
            panic!(
                "out of memory: allocating {len} cells above allocation top {base} \
                 overflows the cell address space"
            )
        });
        let fresh_from = self.arena.len();
        self.grow(self.heap_top);
        // `grow` initializes everything past the old arena end to EMPTY;
        // only the reused prefix (released and re-allocated cells) needs an
        // explicit clear.
        if base < fresh_from {
            Machine::clear_region(self, base, len.min(fresh_from - base));
        }
        base
    }

    fn release_to(&mut self, base: usize) {
        assert!(base <= self.heap_top, "release_to past the allocation top");
        self.heap_top = base;
    }

    fn heap_top(&self) -> usize {
        self.heap_top
    }

    fn load(&mut self, base: usize, values: &[u64]) {
        self.grow(base + values.len());
        let arena = &self.arena;
        self.pool.dispatch(values.len(), 1, |lo, hi| {
            // Safety: shard-segment bulk copy; `&mut self` rules out
            // concurrent cell access, chunks are disjoint.
            unsafe { arena.copy_in(base + lo, &values[lo..hi]) };
        });
    }

    fn dump(&self, base: usize, len: usize) -> Vec<u64> {
        assert!(
            base + len <= self.arena.len(),
            "dump of {base}..{} outside shared memory of size {}",
            base + len,
            self.arena.len()
        );
        let mut out: Vec<u64> = Vec::with_capacity(len);
        let arena = &self.arena;
        let slots = SendPtr(out.as_mut_ptr());
        let slots = &slots;
        self.pool.dispatch(len, 1, |lo, hi| {
            // Safety: bulk copy out of the (quiescent: no step is running,
            // every writer needs `&mut self`) arena into disjoint slots.
            unsafe { arena.copy_out(base + lo, slots.0.add(lo), hi - lo) };
        });
        unsafe { out.set_len(len) };
        out
    }

    fn peek(&self, addr: usize) -> u64 {
        self.arena.cell(addr).load(Ordering::Relaxed)
    }

    fn poke(&mut self, addr: usize, value: u64) {
        self.arena.cell(addr).store(value, Ordering::Relaxed);
    }

    fn clear_region(&mut self, base: usize, len: usize) {
        self.grow(base + len);
        let arena = &self.arena;
        self.pool.dispatch(len, 1, |lo, hi| {
            // Safety: all-ones byte fill == EMPTY fill; `&mut self` rules
            // out concurrent cell access, chunks are disjoint.
            unsafe { arena.fill_empty(base + lo, hi - lo) };
        });
    }

    fn par_map<T, F>(&mut self, procs: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize, &mut dyn MachineProc) -> T + Sync,
    {
        let step_idx = self.steps_executed;
        let seed = self.seed;
        let arena = &self.arena;
        let mut out: Vec<T> = Vec::with_capacity(procs);
        let slots = SendPtr(out.as_mut_ptr());
        let slots = &slots;
        self.pool.dispatch(procs, 1, |lo, hi| {
            let mut ctx = NativeProc {
                arena,
                seed,
                step_idx,
                proc: 0,
                rng: None,
            };
            for p in lo..hi {
                ctx.proc = p as u64;
                ctx.rng = None;
                let value = f(p, &mut ctx);
                unsafe { slots.0.add(p).write(value) };
            }
        });
        unsafe { out.set_len(procs) };
        self.steps_executed += 1;
        out
    }

    fn seq_step<T, F>(&mut self, f: F) -> T
    where
        F: FnOnce(&mut dyn MachineProc) -> T,
    {
        // A native thread's reads already see its own earlier stores, so the
        // sequential step is simply one processor run inline on the caller's
        // thread — the contract's step-index and RNG-stream advances are the
        // same as for a one-processor parallel step.
        let step_idx = self.steps_executed;
        let mut ctx = NativeProc {
            arena: &self.arena,
            seed: self.seed,
            step_idx,
            proc: 0,
            rng: None,
        };
        let result = f(&mut ctx);
        self.steps_executed += 1;
        result
    }

    fn scan_step(&mut self, base: usize, len: usize) -> u64 {
        self.grow(base + len);
        if len == 0 {
            self.steps_executed += 1;
            return 0;
        }
        let nblocks = len.div_ceil(SCAN_BLOCK);
        ensure_words(&mut self.scratch.offsets, nblocks);
        let arena = &self.arena;
        let offsets = &self.scratch.offsets[..];
        let val = |i: usize| {
            let v = arena.cell(base + i).load(Ordering::Relaxed);
            if v == EMPTY {
                0
            } else {
                v
            }
        };
        // Two-pass parallel prefix: per-block totals into reused scratch, an
        // exclusive scan of those totals, then a parallel fill.  Chunks are
        // SCAN_BLOCK-aligned, so each block has one writer.
        let sum_blocks = |lo: usize, hi: usize| {
            let mut i = lo;
            while i < hi {
                let end = (i + SCAN_BLOCK).min(hi);
                offsets[i / SCAN_BLOCK].store((i..end).map(val).sum(), Ordering::Relaxed);
                i = end;
            }
        };
        let scan_blocks = || {
            let mut acc = 0u64;
            for block in &offsets[..nblocks] {
                let total = block.load(Ordering::Relaxed);
                block.store(acc, Ordering::Relaxed);
                acc += total;
            }
            acc
        };
        let fill = |lo: usize, hi: usize| {
            let mut i = lo;
            while i < hi {
                let end = (i + SCAN_BLOCK).min(hi);
                let mut run = offsets[i / SCAN_BLOCK].load(Ordering::Relaxed);
                for j in i..end {
                    run += val(j);
                    arena.cell(base + j).store(run, Ordering::Relaxed);
                }
                i = end;
            }
        };
        let acc = if self.pool.fused() {
            // One fused dispatch: block sums, then the serial exclusive
            // scan of the block totals run by whichever participant owns
            // the first chunk of the middle pass (the other chunks of that
            // pass are no-ops — the barrier still separates it from the
            // fill), then the fill.
            let total = AtomicU64::new(0);
            self.pool
                .dispatch_fused(len, SCAN_BLOCK, 3, |pass, lo, hi| match pass {
                    0 => sum_blocks(lo, hi),
                    1 => {
                        if lo == 0 {
                            total.store(scan_blocks(), Ordering::Relaxed);
                        }
                    }
                    _ => fill(lo, hi),
                });
            total.load(Ordering::Relaxed)
        } else {
            // Unfused baseline: two dispatches with the host scanning the
            // block totals in between.
            self.pool.dispatch(len, SCAN_BLOCK, sum_blocks);
            let acc = scan_blocks();
            self.pool.dispatch(len, SCAN_BLOCK, fill);
            acc
        };
        self.steps_executed += 1;
        acc
    }

    fn global_or_step(&mut self, base: usize, len: usize) -> bool {
        self.grow(base + len);
        let arena = &self.arena;
        let found = AtomicBool::new(false);
        // Chunked early exit: a hit raises the flag, which later chunks
        // observe on entry and running chunks poll every few hundred cells.
        self.pool.dispatch(len, 1, |lo, hi| {
            if found.load(Ordering::Relaxed) {
                return;
            }
            for i in lo..hi {
                if i & OR_POLL_MASK == 0 && found.load(Ordering::Relaxed) {
                    return;
                }
                let v = arena.cell(base + i).load(Ordering::Relaxed);
                if v != 0 && v != EMPTY {
                    found.store(true, Ordering::Relaxed);
                    return;
                }
            }
        });
        self.steps_executed += 1;
        found.load(Ordering::Relaxed)
    }

    fn compact_step(&mut self, src: usize, len: usize, dst: usize) -> u64 {
        if len == 0 {
            return 0;
        }
        self.ensure_memory(src + len);
        // The default route's scratch release rolls the allocator mark back
        // to this point even when `dst + count` lies above it; replicate
        // that so `heap_top` evolves identically on both backends.
        let heap_mark = self.heap_top;
        // Fused equivalent of the trait's flag → scan → gather route: one
        // block-count pass, a host scan of the (reused) per-block offsets,
        // one gather pass writing survivors straight to their global rank.
        // Ranks order identically, so the observable result is the same;
        // the step index advances by 3 like the canonical route, keeping
        // later RNG coordinates in cross-backend lockstep.
        let nblocks = len.div_ceil(SCAN_BLOCK);
        ensure_words(&mut self.scratch.offsets, nblocks);
        if self.pool.fused() && dst + len <= self.arena.len() {
            // Fused route: the destination already fits (`count <= len`, so
            // `dst + count` cannot outgrow the arena mid-group) — run
            // flag-count, the serial block scan, and the gather as ONE
            // fused dispatch.  `ensure_memory(dst + count)` would have been
            // a pure no-op here: no growth, and `heap_top` is rolled back
            // to `heap_mark` below exactly like the unfused route.
            let arena = &self.arena;
            let offsets = &self.scratch.offsets[..];
            let count = AtomicU64::new(0);
            self.pool
                .dispatch_fused(len, SCAN_BLOCK, 3, |pass, lo, hi| match pass {
                    0 => {
                        let mut i = lo;
                        while i < hi {
                            let end = (i + SCAN_BLOCK).min(hi);
                            let survivors = (i..end)
                                .filter(|&j| arena.cell(src + j).load(Ordering::Relaxed) != EMPTY)
                                .count() as u64;
                            offsets[i / SCAN_BLOCK].store(survivors, Ordering::Relaxed);
                            i = end;
                        }
                    }
                    1 => {
                        if lo == 0 {
                            let mut acc = 0u64;
                            for block in &offsets[..nblocks] {
                                let total = block.load(Ordering::Relaxed);
                                block.store(acc, Ordering::Relaxed);
                                acc += total;
                            }
                            count.store(acc, Ordering::Relaxed);
                        }
                    }
                    _ => {
                        let mut i = lo;
                        while i < hi {
                            let end = (i + SCAN_BLOCK).min(hi);
                            let mut rank = offsets[i / SCAN_BLOCK].load(Ordering::Relaxed) as usize;
                            for j in i..end {
                                let v = arena.cell(src + j).load(Ordering::Relaxed);
                                if v != EMPTY {
                                    // Global ranks are disjoint across blocks,
                                    // so every destination cell has exactly one
                                    // writer.
                                    arena.cell(dst + rank).store(v, Ordering::Relaxed);
                                    rank += 1;
                                }
                            }
                            i = end;
                        }
                    }
                });
            self.heap_top = heap_mark;
            self.steps_executed += 3;
            return count.load(Ordering::Relaxed);
        }
        {
            let arena = &self.arena;
            let offsets = &self.scratch.offsets[..];
            self.pool.dispatch(len, SCAN_BLOCK, |lo, hi| {
                let mut i = lo;
                while i < hi {
                    let end = (i + SCAN_BLOCK).min(hi);
                    let survivors = (i..end)
                        .filter(|&j| arena.cell(src + j).load(Ordering::Relaxed) != EMPTY)
                        .count() as u64;
                    offsets[i / SCAN_BLOCK].store(survivors, Ordering::Relaxed);
                    i = end;
                }
            });
        }
        let mut count = 0u64;
        for block in &self.scratch.offsets[..nblocks] {
            let total = block.load(Ordering::Relaxed);
            block.store(count, Ordering::Relaxed);
            count += total;
        }
        self.ensure_memory(dst + count as usize);
        let arena = &self.arena;
        let offsets = &self.scratch.offsets[..];
        self.pool.dispatch(len, SCAN_BLOCK, |lo, hi| {
            let mut i = lo;
            while i < hi {
                let end = (i + SCAN_BLOCK).min(hi);
                let mut rank = offsets[i / SCAN_BLOCK].load(Ordering::Relaxed) as usize;
                for j in i..end {
                    let v = arena.cell(src + j).load(Ordering::Relaxed);
                    if v != EMPTY {
                        // Global ranks are disjoint across blocks, so every
                        // destination cell has exactly one writer.
                        arena.cell(dst + rank).store(v, Ordering::Relaxed);
                        rank += 1;
                    }
                }
                i = end;
            }
        });
        self.heap_top = heap_mark;
        self.steps_executed += 3;
        count
    }

    fn claim(&mut self, attempts: &[(u64, usize)], mode: ClaimMode) -> Vec<bool> {
        let k = attempts.len();
        if k == 0 {
            return Vec::new();
        }
        debug_assert!(
            attempts
                .iter()
                .all(|&(tag, _)| tag != EMPTY && tag != POISON),
            "claim tags must differ from the EMPTY and POISON sentinels"
        );
        if let Some(max_addr) = attempts.iter().map(|&(_, a)| a).max() {
            self.ensure_memory(max_addr + 1);
        }
        let words = k.div_ceil(64);
        ensure_words(&mut self.scratch.live, words);
        ensure_words(&mut self.scratch.cas_won, words);
        let arena = &self.arena;
        let live = &self.scratch.live[..];
        let cas_won = &self.scratch.cas_won[..];
        let counter = &self.counter;
        let pool = &self.pool;
        let mut out: Vec<bool> = Vec::with_capacity(k);
        let slots = SendPtr(out.as_mut_ptr());
        let slots = &slots;

        // All claim passes use 64-aligned chunks, so every scratch word has
        // exactly one writing chunk and plain stores suffice.

        // Probe pass: all probes complete (barrier) before any CAS, so a
        // pre-occupied cell rejects every claim, matching the simulator's
        // snapshot-read S1.  The protocol's passes run as ONE fused pool
        // dispatch: the inter-pass barrier inside `dispatch_fused` gives
        // the same complete-before-next-pass guarantee as the separate
        // dispatches did, at one worker wakeup for the whole protocol.
        let probe = |lo: usize, hi: usize| {
            let mut i = lo;
            while i < hi {
                let end = (i + 64).min(hi);
                let mut bits = 0u64;
                for j in i..end {
                    if j + PREFETCH_DIST < hi {
                        arena.prefetch(attempts[j + PREFETCH_DIST].1);
                    }
                    if arena.cell(attempts[j].1).load(Ordering::Acquire) == EMPTY {
                        bits |= 1u64 << (j - i);
                    }
                }
                live[i / 64].store(bits, Ordering::Relaxed);
                i = end;
            }
        };

        match mode {
            ClaimMode::Occupy => {
                // Second pass: deterministic arbitration.  Every live
                // claimant `fetch_min`s its *claimant index* into the cell
                // (EMPTY is `u64::MAX`, so the cell ends at the lowest live
                // index) — the same winner the simulator's
                // lowest-processor-id write arbitration picks.  A raw
                // first-CAS-wins race here would make the winner depend on
                // chunk execution order, which is exactly the
                // schedule-dependent drift the perf_report step guard
                // caught on the stealing dispatcher.
                let bid = |lo: usize, hi: usize| {
                    let mut i = lo;
                    while i < hi {
                        let end = (i + 64).min(hi);
                        let lw = live[i / 64].load(Ordering::Relaxed);
                        for j in i..end {
                            if j + PREFETCH_DIST < hi {
                                arena.prefetch(attempts[j + PREFETCH_DIST].1);
                            }
                            if lw & (1u64 << (j - i)) != 0 {
                                arena
                                    .cell(attempts[j].1)
                                    .fetch_min(j as u64, Ordering::AcqRel);
                            }
                        }
                        i = end;
                    }
                };
                // Third pass: read-only winner resolution, fused with
                // success output and per-chunk contention bookkeeping.
                // This must not write tags yet: a tag numerically equal to
                // another claimant's index would make that claimant's
                // win-check race against the write.
                let resolve = |lo: usize, hi: usize| {
                    let mut attempted = 0u64;
                    let mut failed = 0u64;
                    let mut i = lo;
                    while i < hi {
                        let end = (i + 64).min(hi);
                        let lw = live[i / 64].load(Ordering::Relaxed);
                        let mut bits = 0u64;
                        for j in i..end {
                            if j + PREFETCH_DIST < hi {
                                arena.prefetch(attempts[j + PREFETCH_DIST].1);
                            }
                            let mut won = false;
                            if lw & (1u64 << (j - i)) != 0 {
                                won = arena.cell(attempts[j].1).load(Ordering::Acquire) == j as u64;
                                attempted += 1;
                                failed += !won as u64;
                            }
                            if won {
                                bits |= 1u64 << (j - i);
                            }
                            unsafe { slots.0.add(j).write(won) };
                        }
                        cas_won[i / 64].store(bits, Ordering::Relaxed);
                        i = end;
                    }
                    counter.add(attempted, failed);
                };
                // Fourth pass: each winner — the unique writer of its cell
                // — replaces its bid with its tag, restoring the "cell
                // keeps the winning tag" contract.
                let settle = |lo: usize, hi: usize| {
                    let mut i = lo;
                    while i < hi {
                        let end = (i + 64).min(hi);
                        let ww = cas_won[i / 64].load(Ordering::Relaxed);
                        for (off, &(tag, addr)) in attempts[i..end].iter().enumerate() {
                            if ww & (1u64 << off) != 0 {
                                arena.cell(addr).store(tag, Ordering::Release);
                            }
                        }
                        i = end;
                    }
                };
                pool.dispatch_fused(k, 64, 4, |pass, lo, hi| match pass {
                    0 => probe(lo, hi),
                    1 => bid(lo, hi),
                    2 => resolve(lo, hi),
                    _ => settle(lo, hi),
                });
                self.steps_executed += 3;
            }
            ClaimMode::Exclusive => {
                // Second pass: CAS + poison — live claimants race, and a
                // loser poisons its cell *immediately*.  The probe barrier
                // already filtered every claim on a pre-occupied cell, so a
                // failed CAS can only mean the cell holds a same-step
                // rival's tag (or POISON from an earlier loser), and
                // marking it contested is what a separate poison pass would
                // have done.  One random-access sweep instead of two; the
                // deterministic outcome (success iff unique live claimant)
                // is unchanged because the verify pass still runs after a
                // full barrier, when every loser has poisoned.
                let cas_poison = |lo: usize, hi: usize| {
                    let mut i = lo;
                    while i < hi {
                        let end = (i + 64).min(hi);
                        let lw = live[i / 64].load(Ordering::Relaxed);
                        let mut bits = 0u64;
                        for j in i..end {
                            if j + PREFETCH_DIST < hi {
                                arena.prefetch(attempts[j + PREFETCH_DIST].1);
                            }
                            if lw & (1u64 << (j - i)) == 0 {
                                continue;
                            }
                            match arena.cell(attempts[j].1).compare_exchange(
                                EMPTY,
                                attempts[j].0,
                                Ordering::AcqRel,
                                Ordering::Acquire,
                            ) {
                                Ok(_) => bits |= 1u64 << (j - i),
                                Err(_) => {
                                    arena.cell(attempts[j].1).store(POISON, Ordering::Release)
                                }
                            }
                        }
                        cas_won[i / 64].store(bits, Ordering::Relaxed);
                        i = end;
                    }
                };
                // Third pass: verify-and-restore, fused with success output
                // and per-chunk contention bookkeeping — a CAS winner whose
                // tag survived was the unique claimant; a poisoned cell is
                // released.
                let verify = |lo: usize, hi: usize| {
                    let mut attempted = 0u64;
                    let mut succeeded = 0u64;
                    let mut i = lo;
                    while i < hi {
                        let end = (i + 64).min(hi);
                        let word = i / 64;
                        attempted += live[word].load(Ordering::Relaxed).count_ones() as u64;
                        let ww = cas_won[word].load(Ordering::Relaxed);
                        for j in i..end {
                            if j + PREFETCH_DIST < hi {
                                arena.prefetch(attempts[j + PREFETCH_DIST].1);
                            }
                            let mut ok = false;
                            if ww & (1u64 << (j - i)) != 0 {
                                if arena.cell(attempts[j].1).load(Ordering::Acquire)
                                    == attempts[j].0
                                {
                                    ok = true;
                                } else {
                                    arena.cell(attempts[j].1).store(EMPTY, Ordering::Release);
                                }
                            }
                            succeeded += ok as u64;
                            unsafe { slots.0.add(j).write(ok) };
                        }
                        i = end;
                    }
                    counter.add(attempted, attempted - succeeded);
                };
                pool.dispatch_fused(k, 64, 3, |pass, lo, hi| match pass {
                    0 => probe(lo, hi),
                    1 => cas_poison(lo, hi),
                    _ => verify(lo, hi),
                });
                self.steps_executed += 6;
            }
        }
        unsafe { out.set_len(k) };
        out
    }

    fn cost_report(&self) -> CostReport {
        CostReport {
            backend: self.backend_name(),
            steps: self.steps_executed,
            wall: self.created.elapsed(),
            claim_attempts: self.counter.attempts(),
            contended_claims: self.counter.failures(),
            work: None,
            max_contention: None,
            time_qrqw: None,
            bsp: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arena::SHARD_CELLS;

    #[test]
    fn par_map_runs_all_processors_in_order() {
        let mut m = NativeMachine::new(16);
        let out = m.par_map(5000, |p, ctx| {
            ctx.write(p % 16, p as u64);
            p * 2
        });
        assert_eq!(out.len(), 5000);
        assert_eq!(out[1234], 2468);
        assert_eq!(m.steps_executed, 1);
    }

    #[test]
    fn scan_step_matches_sequential_prefix() {
        let mut m = NativeMachine::new(0);
        let n = 20_000usize;
        let vals: Vec<u64> = (0..n as u64).map(|i| i % 7).collect();
        Machine::ensure_memory(&mut m, n);
        Machine::load(&mut m, 0, &vals);
        let total = m.scan_step(0, n);
        assert_eq!(total, vals.iter().sum::<u64>());
        let got = Machine::dump(&m, 0, n);
        let mut acc = 0u64;
        for i in 0..n {
            acc += vals[i];
            assert_eq!(got[i], acc, "mismatch at {i}");
        }
    }

    #[test]
    fn scan_step_treats_empty_as_zero() {
        let mut m = NativeMachine::new(4);
        Machine::poke(&mut m, 1, 5);
        assert_eq!(m.scan_step(0, 4), 5);
        assert_eq!(Machine::dump(&m, 0, 4), vec![0, 5, 5, 5]);
    }

    #[test]
    fn global_or_detects_any_nonzero() {
        let mut m = NativeMachine::new(5000);
        assert!(!m.global_or_step(0, 5000));
        Machine::poke(&mut m, 4321, 9);
        assert!(m.global_or_step(0, 5000));
    }

    #[test]
    fn exclusive_claim_is_deterministic_and_restores_contested_cells() {
        let mut m = NativeMachine::new(8);
        let ok = m.claim(&[(1, 4), (2, 4), (3, 4), (4, 6)], ClaimMode::Exclusive);
        assert_eq!(ok, vec![false, false, false, true]);
        assert_eq!(
            Machine::peek(&m, 4),
            EMPTY,
            "contested cell must be restored"
        );
        assert_eq!(Machine::peek(&m, 6), 4);
        assert_eq!(m.steps_executed, 6);
        assert_eq!(m.contention().failures(), 3);
    }

    #[test]
    fn occupy_claim_lets_exactly_one_winner_through() {
        let mut m = NativeMachine::new(8);
        let attempts = vec![(10u64, 4usize), (11, 4), (12, 4)];
        let ok = m.claim(&attempts, ClaimMode::Occupy);
        assert_eq!(ok.iter().filter(|&&b| b).count(), 1);
        let winner = ok.iter().position(|&b| b).unwrap();
        assert_eq!(Machine::peek(&m, 4), attempts[winner].0);
        assert_eq!(m.steps_executed, 3);
    }

    #[test]
    fn occupied_cells_reject_claims_in_both_modes() {
        for mode in [ClaimMode::Exclusive, ClaimMode::Occupy] {
            let mut m = NativeMachine::new(8);
            Machine::poke(&mut m, 2, 55);
            assert_eq!(m.claim(&[(77, 2)], mode), vec![false]);
            assert_eq!(Machine::peek(&m, 2), 55);
        }
    }

    #[test]
    fn alloc_and_release_behave_like_a_stack() {
        let mut m = NativeMachine::new(8);
        let a = Machine::alloc(&mut m, 4);
        assert_eq!(a, 8);
        let b = Machine::alloc(&mut m, 2);
        assert_eq!(b, 12);
        Machine::release_to(&mut m, b);
        let c = Machine::alloc(&mut m, 3);
        assert_eq!(c, 12);
        assert!(Machine::dump(&m, c, 3).iter().all(|&v| v == EMPTY));
    }

    #[test]
    fn seq_step_reads_own_writes_and_advances_one_step() {
        let mut m = NativeMachine::new(8);
        let observed = m.seq_step(|ctx| {
            ctx.write(3, 41);
            let fresh = ctx.read(3);
            ctx.write(3, fresh + 1);
            ctx.read(3)
        });
        assert_eq!(observed, 42);
        assert_eq!(Machine::peek(&m, 3), 42);
        assert_eq!(m.steps_executed, 1);
    }

    #[test]
    fn seq_step_random_stream_matches_the_simulator() {
        let mut native = NativeMachine::with_seed(4, 31);
        let a = native.seq_step(|ctx| ctx.random_index(1 << 20));
        let b = native.seq_step(|ctx| ctx.random_index(1 << 20));
        let mut sim = qrqw_sim::Pram::with_seed(4, 31);
        let c = Machine::seq_step(&mut sim, |ctx| ctx.random_index(1 << 20));
        let d = Machine::seq_step(&mut sim, |ctx| ctx.random_index(1 << 20));
        assert_eq!((a, b), (c, d));
    }

    #[test]
    fn random_streams_match_the_simulator() {
        // The same (seed, step, proc) coordinates must give the same draws
        // on both backends — the cornerstone of cross-backend parity.
        let mut native = NativeMachine::with_seed(4, 77);
        let native_draws = native.par_map(64, |_p, ctx| ctx.random_index(1000));
        let mut sim = qrqw_sim::Pram::with_seed(4, 77);
        let sim_draws = Machine::par_map(&mut sim, 64, |_p, ctx| ctx.random_index(1000));
        assert_eq!(native_draws, sim_draws);
    }

    #[test]
    fn random_streams_match_the_simulator_at_every_thread_count() {
        let mut sim = qrqw_sim::Pram::with_seed(4, 77);
        let sim_draws = Machine::par_map(&mut sim, 5000, |_p, ctx| ctx.random_index(1 << 30));
        for threads in [1, 2, 3, 8] {
            let mut native = NativeMachine::with_threads(4, 77, threads);
            let draws = native.par_map(5000, |_p, ctx| ctx.random_index(1 << 30));
            assert_eq!(draws, sim_draws, "thread count {threads} diverged");
        }
    }

    #[test]
    fn bulk_memory_ops_work_above_the_inline_cutoff() {
        let n = 100_000usize;
        let mut m = NativeMachine::with_threads(0, 0, 4);
        let vals: Vec<u64> = (0..n as u64).map(|i| i.wrapping_mul(0x9E37)).collect();
        Machine::ensure_memory(&mut m, n);
        Machine::load(&mut m, 0, &vals);
        assert_eq!(Machine::dump(&m, 0, n), vals);
        Machine::clear_region(&mut m, 10, n - 10);
        assert_eq!(Machine::peek(&m, 9), vals[9]);
        assert!((10..n).all(|a| Machine::peek(&m, a) == EMPTY));
    }

    #[test]
    fn large_exclusive_claims_match_across_thread_counts() {
        // 40k attempts over 16k cells: plenty of collisions, chunked over
        // word-aligned dispatch.  Exclusive outcomes must not depend on the
        // thread count, and contention totals must agree.
        let k = 40_000usize;
        let cells = 16_384usize;
        let attempts: Vec<(u64, usize)> = (0..k)
            .map(|i| (i as u64 + 1, (i * 2654435761) % cells))
            .collect();
        let run = |threads: usize| {
            let mut m = NativeMachine::with_threads(cells, 0, threads);
            let ok = m.claim(&attempts, ClaimMode::Exclusive);
            (ok, m.contention().attempts(), m.contention().failures())
        };
        let baseline = run(1);
        for threads in [2, 5] {
            assert_eq!(run(threads), baseline, "thread count {threads} diverged");
        }
        // Cross-check against a sequential model: success iff unique
        // claimant of the cell.
        let mut count_per_cell = vec![0u32; cells];
        for &(_, a) in &attempts {
            count_per_cell[a] += 1;
        }
        for (i, &(_, a)) in attempts.iter().enumerate() {
            assert_eq!(baseline.0[i], count_per_cell[a] == 1, "attempt {i}");
        }
    }

    #[test]
    fn claim_and_scan_scratch_buffers_are_reused_across_steps() {
        // The zero-allocation contract: once warm, repeated steps of the
        // same shape must not reallocate the pass scratch.
        let k = 10_000usize;
        let attempts: Vec<(u64, usize)> = (0..k).map(|i| (i as u64 + 1, i % 4096)).collect();
        let mut m = NativeMachine::with_threads(4096, 0, 2);
        let _ = m.claim(&attempts, ClaimMode::Exclusive);
        let _ = m.scan_step(0, 4096);
        let warm = m.scratch_fingerprint();
        assert_ne!(warm, (0, 0, 0), "scratch must be materialized after use");
        for round in 0..10 {
            Machine::clear_region(&mut m, 0, 4096);
            let _ = m.claim(&attempts, ClaimMode::Occupy);
            let _ = m.claim(&attempts, ClaimMode::Exclusive);
            let _ = m.scan_step(0, 4096);
            assert_eq!(
                m.scratch_fingerprint(),
                warm,
                "steady-state steps must reuse scratch buffers"
            );
            // Arena growth appends shards; it must not disturb the pass
            // scratch of a warm machine.
            m.ensure_memory((round + 2) * SHARD_CELLS);
            assert_eq!(
                m.scratch_fingerprint(),
                warm,
                "arena growth must leave the warm scratch untouched"
            );
        }
        assert!(
            m.arena_stats().shards >= 11,
            "growth must have added shards"
        );
    }

    #[test]
    fn compact_step_matches_the_simulator_even_for_raw_destinations() {
        // A destination above the allocator mark: the default route's
        // scratch release rolls `heap_top` back, and the native override
        // must evolve `heap_top` identically or later allocations diverge
        // across backends.
        fn drive<M: Machine>(m: &mut M) -> (u64, Vec<u64>, usize, usize) {
            m.ensure_memory(8);
            m.poke(1, 5);
            m.poke(3, 9);
            let count = m.compact_step(0, 8, 20);
            let compacted = m.dump(20, count as usize);
            let next_alloc = m.alloc(4);
            (count, compacted, m.heap_top(), next_alloc)
        }
        let mut native = NativeMachine::with_seed(8, 0);
        let mut sim = qrqw_sim::Pram::with_seed(8, 0);
        assert_eq!(drive(&mut native), drive(&mut sim));
        assert_eq!(native.steps_executed, sim.steps_executed());
    }

    #[test]
    fn growth_preserves_cell_addresses_and_contents() {
        // The grow-without-move invariant, observed through the machine:
        // growing by whole shards leaves every existing cell at the same
        // physical address with the same contents, and fresh cells EMPTY.
        let mut m = NativeMachine::with_seed(SHARD_CELLS, 1);
        m.poke(0, 7);
        m.poke(SHARD_CELLS - 1, 11);
        let first = m.cell_addr(0);
        let last = m.cell_addr(SHARD_CELLS - 1);
        m.ensure_memory(4 * SHARD_CELLS + 5);
        assert_eq!(m.cell_addr(0), first, "growth moved the first cell");
        assert_eq!(m.cell_addr(SHARD_CELLS - 1), last, "growth moved a cell");
        assert_eq!(m.peek(0), 7);
        assert_eq!(m.peek(SHARD_CELLS - 1), 11);
        assert_eq!(m.peek(SHARD_CELLS), EMPTY, "fresh cells must be EMPTY");
        assert_eq!(m.peek(4 * SHARD_CELLS + 4), EMPTY);
        assert_eq!(m.arena_stats().shards, 5);
    }

    #[test]
    fn writes_straddling_a_shard_boundary_land_in_both_shards() {
        // First/last cell of a shard: the shift+mask cell→shard map must
        // agree with the flat address space across the seam.
        let mut m = NativeMachine::with_seed(2 * SHARD_CELLS, 1);
        let seam = SHARD_CELLS;
        let values: Vec<u64> = (0..8).map(|i| 100 + i).collect();
        m.load(seam - 4, &values);
        assert_eq!(m.dump(seam - 4, 8), values);
        assert_eq!(m.peek(seam - 1), 103, "last cell of shard 0");
        assert_eq!(m.peek(seam), 104, "first cell of shard 1");
    }

    #[test]
    #[should_panic(expected = "outside shared memory")]
    fn growth_mid_step_is_rejected() {
        // Steps may not grow the machine: a processor touching an address
        // beyond the logical length must panic, not silently allocate.
        // One thread so the step closure runs inline and the panic
        // propagates to the caller.
        let mut m = NativeMachine::with_threads(64, 0, 1);
        let _ = m.par_map(1, |_, ctx| ctx.write(64, 1));
    }

    #[test]
    #[ignore = "huge-n smoke: ~1 GiB arena, run explicitly with --ignored"]
    fn huge_n_smoke_at_2_pow_27() {
        // The acceptance bar for the sharded arena: 2^27 cells come up,
        // span 512 shards, and the step primitives work at the far end of
        // the address space without the old realloc cliff.
        let n = 1usize << 27;
        let mut m = NativeMachine::with_seed(1, 1);
        m.ensure_memory(n);
        let stats = m.arena_stats();
        assert_eq!(stats.cells, n);
        assert_eq!(stats.shards, n / SHARD_CELLS);
        let tail = n - 4096;
        let values: Vec<u64> = (0..4096u64).map(|i| i + 1).collect();
        m.load(tail, &values);
        let total = m.scan_step(tail, 4096);
        assert_eq!(total, 4096 * 4097 / 2);
        let attempts: Vec<(u64, usize)> = (0..4096).map(|i| (i as u64 + 1, tail + i / 2)).collect();
        Machine::clear_region(&mut m, tail, 4096);
        let won = m.claim(&attempts, ClaimMode::Exclusive);
        assert!(won.iter().all(|&b| !b), "every cell is contested by a pair");
    }

    #[test]
    fn occupy_claims_match_the_exclusive_contention_totals_model() {
        // Occupy mode hands contested cells to one winner, so the number of
        // failures is (live attempts − cells won) — deterministic even
        // though the winner is not.  Check totals across thread counts.
        let k = 30_000usize;
        let cells = 8192usize;
        let attempts: Vec<(u64, usize)> = (0..k)
            .map(|i| (i as u64 + 1, (i * 40503) % cells))
            .collect();
        let run = |threads: usize| {
            let mut m = NativeMachine::with_threads(cells, 0, threads);
            let ok = m.claim(&attempts, ClaimMode::Occupy);
            let winners = ok.iter().filter(|&&b| b).count();
            (
                winners,
                m.contention().attempts(),
                m.contention().failures(),
            )
        };
        let baseline = run(1);
        for threads in [2, 5] {
            assert_eq!(run(threads), baseline, "thread count {threads} diverged");
        }
    }
}
