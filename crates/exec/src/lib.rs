//! # qrqw-exec — the native shared-memory `Machine` backend
//!
//! Section 5.2 of the paper compares its random-permutation algorithms on a
//! 16,384-processor MasPar MP-1 (Table II).  Neither that machine nor the
//! later Cray J90 exists here, so this crate substitutes a modern
//! shared-memory multicore: [`NativeMachine`] implements the
//! [`qrqw_sim::Machine`] backend API with an [`std::sync::atomic::AtomicU64`]
//! arena and rayon-style thread fan-out, and threads contending on atomic
//! cells play the role of the MasPar router queues.
//!
//! The algorithms themselves live in `qrqw-core`, written once against the
//! `Machine` trait; running `qrqw_core::random_permutation_qrqw` (or linear
//! compaction, or load balancing, …) on a [`NativeMachine`] *is* the native
//! execution — there is no second copy of any algorithm in this crate.
//! [`ContentionCounter`] records failed claim attempts, the native
//! observable analogue of the QRQW contention charge, and
//! [`qrqw_sim::Machine::cost_report`] reports wall-clock time next to it.
//!
//! Execution is pooled and allocation-free on the step path: [`pool::StepPool`]
//! dispatches every step as contiguous chunks to persistent, parked worker
//! threads (spawned once per process), and the machine keeps reusable
//! scratch for its claim bitsets and scan offsets — see the module docs of
//! [`machine`].  Thread count comes from [`NativeMachine::with_threads`] or
//! the `QRQW_THREADS` environment variable.
//!
//! Shared memory itself is a sharded arena ([`arena`]): independently
//! allocated, cache-line-aligned segments of [`arena::SHARD_CELLS`] cells
//! each, mapped by shift+mask.  Growth appends shards without moving
//! existing cells, so huge-n runs (2^27 cells and beyond) never pay a
//! realloc copy or a transient 2× memory footprint.
//!
//! Chunks reach threads under one of two [`pool::Schedule`]s — `Chunked`
//! (one shared claim counter) or `Stealing` (per-worker ranges with
//! work-assisting steal-half splits, for skewed per-chunk costs) — chosen
//! per machine ([`NativeMachine::with_schedule`]) or per process
//! (`QRQW_SCHEDULE`).  [`StealingMachine`] is the backend pinned to the
//! stealing schedule, registered as `native-steal` in the bench registry.
//! Both schedules run identical chunk boundaries, so they are
//! bit-identical in every observable (see `ARCHITECTURE.md`, "The
//! determinism contract").

#![deny(missing_docs)]

pub mod arena;
pub mod contention;
pub mod handle;
pub mod machine;
pub mod pool;
pub mod steal;

pub use arena::{ArenaStats, SHARD_CELLS};
pub use contention::ContentionCounter;
pub use handle::{BatchCost, MachineSnapshot, PersistentMachine};
pub use machine::NativeMachine;
pub use pool::{Schedule, StepPool};
pub use steal::StealingMachine;
