//! # qrqw-exec — native shared-memory executor for the Table II experiment
//!
//! Section 5.2 of the paper compares three random-permutation algorithms on
//! a 16,384-processor MasPar MP-1 (Table II) and, later, on a Cray J90.
//! Neither machine exists here, so this crate substitutes a modern
//! shared-memory multicore driven by rayon and atomics: the three algorithms
//! are implemented natively (threads contending on atomic cells play the
//! role of the MasPar router queues) and timed with wall-clock benchmarks.
//! The simulated-model cross-check lives in `qrqw-core::permutation`; this
//! crate is about real execution.
//!
//! * [`sorting_based_permutation`] — draw a random 64-bit key per item and
//!   sort (the EREW baseline; `rank32` on the MasPar, a parallel sort here).
//! * [`dart_scan_permutation`] — dart throwing with a compaction scan after
//!   every round.
//! * [`dart_qrqw_permutation`] — the paper's QRQW algorithm: dart throwing
//!   into geometrically shrinking fresh subarrays, one compaction at the end.
//!
//! [`ContentionCounter`] records the number of failed CAS attempts, the
//! native analogue of the QRQW contention charge.

#![warn(missing_docs)]

pub mod contention;
pub mod permutation;

pub use contention::ContentionCounter;
pub use permutation::{
    dart_qrqw_permutation, dart_scan_permutation, sorting_based_permutation, NativeOutcome,
};
