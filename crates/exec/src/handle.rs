//! [`PersistentMachine`]: a long-lived [`NativeMachine`] owner for batch
//! servers.
//!
//! The one-shot harnesses construct a machine, run one algorithm, and read
//! one cumulative [`Machine::cost_report`].  A request server is different:
//! it keeps a single machine alive across thousands of batches and needs
//! *per-batch* cost attribution — how many steps, claim attempts and
//! contended claims *this* batch added, and how long it took — because the
//! batch is the service's unit of work (the h-relation of the QRQW story).
//! [`PersistentMachine`] wraps the machine together with the counter marks
//! needed to turn the cumulative counters into per-batch deltas, so callers
//! get a [`BatchCost`] per [`PersistentMachine::batch`] scope without
//! re-deriving deltas by hand (and without a second contention counter).
//!
//! A batch server also needs *restartability*: a batch that panics
//! mid-application must not leave the machine in a half-applied state.
//! [`PersistentMachine::snapshot`] captures the machine's observable state
//! — the live cell prefix `[0, heap_top)` of the sharded arena plus the
//! heap/step/contention counters — and [`PersistentMachine::restore`] rolls
//! back to it, counters, marks, and (because random draws are a pure
//! function of `(seed, step_idx, proc)`) RNG streams included.  Snapshots
//! reuse their buffer via [`PersistentMachine::snapshot_into`], so a
//! per-batch checkpoint of a steady working set costs one bulk copy and no
//! allocation.

use std::time::{Duration, Instant};

use qrqw_sim::Machine;

use crate::{NativeMachine, StepPool};

/// What one batch scope cost: the deltas of the machine's cumulative
/// counters across a [`PersistentMachine::batch`] call, plus its wall time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchCost {
    /// Machine steps the batch executed.
    pub steps: u64,
    /// Claim attempts the batch issued.
    pub claim_attempts: u64,
    /// Claim attempts that lost their cell to a same-step collision — the
    /// realized contention of the batch.
    pub contended_claims: u64,
    /// Wall-clock time of the batch scope.
    pub wall: Duration,
}

impl std::ops::AddAssign for BatchCost {
    /// Folds another scope's cost into this one (durations and counters
    /// add) — how a bisection replay accumulates the cost of its
    /// sub-batches into one batch-level total.
    fn add_assign(&mut self, other: BatchCost) {
        self.steps += other.steps;
        self.claim_attempts += other.claim_attempts;
        self.contended_claims += other.contended_claims;
        self.wall += other.wall;
    }
}

/// A point-in-time copy of a [`NativeMachine`]'s observable state: the live
/// cell prefix `[0, heap_top)`, the allocation top, the step counter (which
/// pins the RNG streams), and the contention totals.
///
/// Produced by [`PersistentMachine::snapshot`] /
/// [`PersistentMachine::snapshot_into`]; consumed by
/// [`PersistentMachine::restore`].  `Default` is an empty snapshot suitable
/// only as a reusable buffer for `snapshot_into`.
#[derive(Debug, Clone, Default)]
pub struct MachineSnapshot {
    pub(crate) cells: Vec<u64>,
    pub(crate) heap_top: usize,
    pub(crate) steps_executed: u64,
    pub(crate) attempts: u64,
    pub(crate) failures: u64,
}

impl MachineSnapshot {
    /// The allocation top at snapshot time — also the number of cells the
    /// snapshot copied, i.e. its memory footprint in `u64`s.
    pub fn heap_top(&self) -> usize {
        self.heap_top
    }

    /// The machine step counter at snapshot time.
    pub fn steps_executed(&self) -> u64 {
        self.steps_executed
    }
}

/// A [`NativeMachine`] that lives across many batches, with per-batch cost
/// attribution.
///
/// ```
/// use qrqw_exec::PersistentMachine;
/// use qrqw_sim::Machine;
///
/// let mut pm = PersistentMachine::from_env(64, 1);
/// let (base, cost) = pm.batch(|m| m.alloc(16));
/// assert_eq!(base, 64);
/// assert_eq!(cost.steps, 0); // alloc is not a step
/// let ((), cost) = pm.batch(|m| m.par_for(16, |p, ctx| ctx.write(base + p, 7)));
/// assert_eq!(cost.steps, 1);
/// ```
#[derive(Debug)]
pub struct PersistentMachine {
    machine: NativeMachine,
    steps_mark: u64,
    attempts_mark: u64,
    failures_mark: u64,
}

impl PersistentMachine {
    /// Wraps an already-constructed machine.
    pub fn new(machine: NativeMachine) -> Self {
        let steps_mark = machine.steps_executed();
        let attempts_mark = machine.contention().attempts();
        let failures_mark = machine.contention().failures();
        PersistentMachine {
            machine,
            steps_mark,
            attempts_mark,
            failures_mark,
        }
    }

    /// Creates a machine with `mem_size` cells and the given seed, resolving
    /// thread count and schedule from the environment (`QRQW_THREADS`,
    /// `QRQW_SCHEDULE`) exactly like [`Machine::with_seed`] does.
    pub fn from_env(mem_size: usize, seed: u64) -> Self {
        Self::new(NativeMachine::with_seed(mem_size, seed))
    }

    /// Creates a machine with a fully explicit dispatch policy.
    pub fn with_pool(mem_size: usize, seed: u64, pool: StepPool) -> Self {
        Self::new(NativeMachine::with_pool(mem_size, seed, pool))
    }

    /// The wrapped machine, for direct (un-attributed) access.
    pub fn machine(&mut self) -> &mut NativeMachine {
        &mut self.machine
    }

    /// Read-only access to the wrapped machine.
    pub fn machine_ref(&self) -> &NativeMachine {
        &self.machine
    }

    /// The shape of the wrapped machine's sharded arena — how many cells
    /// are live and how many shards back them.  Growth across batches
    /// appends shards without moving cells, so callers can watch this to
    /// confirm a long-lived machine scales without realloc cliffs.
    pub fn arena_stats(&self) -> crate::arena::ArenaStats {
        self.machine.arena_stats()
    }

    /// Runs `f` against the machine and reports what it cost: the deltas of
    /// the step and contention counters across the call, plus wall time.
    pub fn batch<T>(&mut self, f: impl FnOnce(&mut NativeMachine) -> T) -> (T, BatchCost) {
        let start = Instant::now();
        let out = f(&mut self.machine);
        let wall = start.elapsed();
        let steps = self.machine.steps_executed();
        let attempts = self.machine.contention().attempts();
        let failures = self.machine.contention().failures();
        let cost = BatchCost {
            steps: steps - self.steps_mark,
            claim_attempts: attempts - self.attempts_mark,
            contended_claims: failures - self.failures_mark,
            wall,
        };
        self.steps_mark = steps;
        self.attempts_mark = attempts;
        self.failures_mark = failures;
        (out, cost)
    }

    /// Captures a [`MachineSnapshot`] of the current machine state.
    pub fn snapshot(&self) -> MachineSnapshot {
        let mut snap = MachineSnapshot::default();
        self.snapshot_into(&mut snap);
        snap
    }

    /// Captures a snapshot into `snap`, reusing its buffer — the
    /// allocation-free path for a per-batch checkpoint.
    pub fn snapshot_into(&self, snap: &mut MachineSnapshot) {
        self.machine.snapshot_into(snap);
    }

    /// Rolls the machine back to `snap` and rewinds the batch marks to the
    /// snapshot's counters, so the next [`PersistentMachine::batch`]
    /// reports only post-restore work (a rolled-back batch costs nothing).
    ///
    /// # Panics
    ///
    /// If `snap` was not taken from this machine (see
    /// [`NativeMachine::restore`]).
    pub fn restore(&mut self, snap: &MachineSnapshot) {
        self.machine.restore(snap);
        self.steps_mark = snap.steps_executed;
        self.attempts_mark = snap.attempts;
        self.failures_mark = snap.failures;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrqw_sim::ClaimMode;

    #[test]
    fn batch_costs_are_deltas_not_cumulative_totals() {
        let mut pm = PersistentMachine::with_pool(64, 0, StepPool::with_threads(2));
        let (_, first) = pm.batch(|m| {
            m.claim(&[(1, 4), (2, 4), (3, 9)], ClaimMode::Exclusive);
        });
        assert_eq!(first.steps, 6);
        assert_eq!(first.claim_attempts, 3);
        assert_eq!(first.contended_claims, 2);
        // A second batch reports only its own cost, not the running totals.
        let (_, second) = pm.batch(|m| {
            m.claim(&[(5, 20)], ClaimMode::Occupy);
        });
        assert_eq!(second.steps, 3);
        assert_eq!(second.claim_attempts, 1);
        assert_eq!(second.contended_claims, 0);
        // The machine's own cumulative counters kept counting.
        assert_eq!(pm.machine_ref().contention().attempts(), 4);
    }

    #[test]
    fn state_persists_across_batches() {
        let mut pm = PersistentMachine::from_env(8, 3);
        let ((), _) = pm.batch(|m| m.poke(3, 41));
        let (v, cost) = pm.batch(|m| m.peek(3));
        assert_eq!(v, 41);
        assert_eq!(cost.steps, 0);
    }

    #[test]
    fn snapshot_restore_round_trips_memory_counters_and_marks() {
        let mut pm = PersistentMachine::with_pool(64, 0, StepPool::with_threads(2));
        let ((), _) = pm.batch(|m| {
            m.poke(5, 99);
            m.claim(&[(1, 4), (2, 4)], ClaimMode::Exclusive);
        });
        let snap = pm.snapshot();
        assert_eq!(snap.heap_top(), 64);
        // Mutate heavily after the snapshot: memory, allocation, steps,
        // contention.
        let ((), _) = pm.batch(|m| {
            m.poke(5, 1);
            let base = m.alloc(32);
            m.poke(base + 7, 123);
            m.claim(&[(9, 10), (10, 10), (11, 10)], ClaimMode::Occupy);
        });
        pm.restore(&snap);
        let m = pm.machine_ref();
        assert_eq!(m.steps_executed(), snap.steps_executed());
        assert_eq!(m.heap_top(), 64);
        assert_eq!(m.peek(5), 99, "restored cell must hold the old value");
        assert_eq!(m.contention().attempts(), 2);
        assert_eq!(m.contention().failures(), 2);
        // A cell allocated only after the snapshot reads EMPTY again.
        let (v, cost) = pm.batch(|m| {
            let base = m.alloc(32);
            m.peek(base + 7)
        });
        assert_eq!(v, qrqw_sim::EMPTY, "post-snapshot writes must be gone");
        // The marks rewound with the restore: the rolled-back batch's
        // claims must not leak into the next delta.
        assert_eq!(cost.claim_attempts, 0);
        let (_, cost) = pm.batch(|m| {
            m.claim(&[(5, 20)], ClaimMode::Occupy);
        });
        assert_eq!(cost.claim_attempts, 1);
    }

    #[test]
    fn restore_rewinds_the_random_streams() {
        // RNG draws are a pure function of (seed, step_idx, proc):
        // restoring the step counter must replay the identical stream.
        let mut pm = PersistentMachine::with_pool(8, 42, StepPool::with_threads(2));
        let snap = pm.snapshot();
        let (first, _) = pm.batch(|m| m.par_map(16, |_p, ctx| ctx.random_index(1 << 30)));
        let (_, _) = pm.batch(|m| m.par_map(16, |_p, ctx| ctx.random_index(1 << 30)));
        pm.restore(&snap);
        let (replay, _) = pm.batch(|m| m.par_map(16, |_p, ctx| ctx.random_index(1 << 30)));
        assert_eq!(first, replay);
    }

    #[test]
    fn snapshot_into_reuses_the_buffer_when_warm() {
        let mut pm = PersistentMachine::with_pool(4096, 0, StepPool::with_threads(2));
        let mut snap = MachineSnapshot::default();
        pm.snapshot_into(&mut snap);
        let warm = snap.cells.as_ptr() as usize;
        let ((), _) = pm.batch(|m| m.poke(100, 7));
        pm.snapshot_into(&mut snap);
        assert_eq!(
            snap.cells.as_ptr() as usize,
            warm,
            "a steady working set must not reallocate the snapshot buffer"
        );
        assert_eq!(snap.cells[100], 7);
    }

    #[test]
    fn batch_cost_add_assign_sums_every_field() {
        let mut a = BatchCost {
            steps: 1,
            claim_attempts: 2,
            contended_claims: 3,
            wall: Duration::from_micros(5),
        };
        a += BatchCost {
            steps: 10,
            claim_attempts: 20,
            contended_claims: 30,
            wall: Duration::from_micros(50),
        };
        assert_eq!(a.steps, 11);
        assert_eq!(a.claim_attempts, 22);
        assert_eq!(a.contended_claims, 33);
        assert_eq!(a.wall, Duration::from_micros(55));
    }
}
