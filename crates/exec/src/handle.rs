//! [`PersistentMachine`]: a long-lived [`NativeMachine`] owner for batch
//! servers.
//!
//! The one-shot harnesses construct a machine, run one algorithm, and read
//! one cumulative [`Machine::cost_report`].  A request server is different:
//! it keeps a single machine alive across thousands of batches and needs
//! *per-batch* cost attribution — how many steps, claim attempts and
//! contended claims *this* batch added, and how long it took — because the
//! batch is the service's unit of work (the h-relation of the QRQW story).
//! [`PersistentMachine`] wraps the machine together with the counter marks
//! needed to turn the cumulative counters into per-batch deltas, so callers
//! get a [`BatchCost`] per [`PersistentMachine::batch`] scope without
//! re-deriving deltas by hand (and without a second contention counter).

use std::time::{Duration, Instant};

use qrqw_sim::Machine;

use crate::{NativeMachine, StepPool};

/// What one batch scope cost: the deltas of the machine's cumulative
/// counters across a [`PersistentMachine::batch`] call, plus its wall time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchCost {
    /// Machine steps the batch executed.
    pub steps: u64,
    /// Claim attempts the batch issued.
    pub claim_attempts: u64,
    /// Claim attempts that lost their cell to a same-step collision — the
    /// realized contention of the batch.
    pub contended_claims: u64,
    /// Wall-clock time of the batch scope.
    pub wall: Duration,
}

/// A [`NativeMachine`] that lives across many batches, with per-batch cost
/// attribution.
///
/// ```
/// use qrqw_exec::PersistentMachine;
/// use qrqw_sim::Machine;
///
/// let mut pm = PersistentMachine::from_env(64, 1);
/// let (base, cost) = pm.batch(|m| m.alloc(16));
/// assert_eq!(base, 64);
/// assert_eq!(cost.steps, 0); // alloc is not a step
/// let ((), cost) = pm.batch(|m| m.par_for(16, |p, ctx| ctx.write(base + p, 7)));
/// assert_eq!(cost.steps, 1);
/// ```
#[derive(Debug)]
pub struct PersistentMachine {
    machine: NativeMachine,
    steps_mark: u64,
    attempts_mark: u64,
    failures_mark: u64,
}

impl PersistentMachine {
    /// Wraps an already-constructed machine.
    pub fn new(machine: NativeMachine) -> Self {
        let steps_mark = machine.steps_executed();
        let attempts_mark = machine.contention().attempts();
        let failures_mark = machine.contention().failures();
        PersistentMachine {
            machine,
            steps_mark,
            attempts_mark,
            failures_mark,
        }
    }

    /// Creates a machine with `mem_size` cells and the given seed, resolving
    /// thread count and schedule from the environment (`QRQW_THREADS`,
    /// `QRQW_SCHEDULE`) exactly like [`Machine::with_seed`] does.
    pub fn from_env(mem_size: usize, seed: u64) -> Self {
        Self::new(NativeMachine::with_seed(mem_size, seed))
    }

    /// Creates a machine with a fully explicit dispatch policy.
    pub fn with_pool(mem_size: usize, seed: u64, pool: StepPool) -> Self {
        Self::new(NativeMachine::with_pool(mem_size, seed, pool))
    }

    /// The wrapped machine, for direct (un-attributed) access.
    pub fn machine(&mut self) -> &mut NativeMachine {
        &mut self.machine
    }

    /// Read-only access to the wrapped machine.
    pub fn machine_ref(&self) -> &NativeMachine {
        &self.machine
    }

    /// The shape of the wrapped machine's sharded arena — how many cells
    /// are live and how many shards back them.  Growth across batches
    /// appends shards without moving cells, so callers can watch this to
    /// confirm a long-lived machine scales without realloc cliffs.
    pub fn arena_stats(&self) -> crate::arena::ArenaStats {
        self.machine.arena_stats()
    }

    /// Runs `f` against the machine and reports what it cost: the deltas of
    /// the step and contention counters across the call, plus wall time.
    pub fn batch<T>(&mut self, f: impl FnOnce(&mut NativeMachine) -> T) -> (T, BatchCost) {
        let start = Instant::now();
        let out = f(&mut self.machine);
        let wall = start.elapsed();
        let steps = self.machine.steps_executed();
        let attempts = self.machine.contention().attempts();
        let failures = self.machine.contention().failures();
        let cost = BatchCost {
            steps: steps - self.steps_mark,
            claim_attempts: attempts - self.attempts_mark,
            contended_claims: failures - self.failures_mark,
            wall,
        };
        self.steps_mark = steps;
        self.attempts_mark = attempts;
        self.failures_mark = failures;
        (out, cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrqw_sim::ClaimMode;

    #[test]
    fn batch_costs_are_deltas_not_cumulative_totals() {
        let mut pm = PersistentMachine::with_pool(64, 0, StepPool::with_threads(2));
        let (_, first) = pm.batch(|m| {
            m.claim(&[(1, 4), (2, 4), (3, 9)], ClaimMode::Exclusive);
        });
        assert_eq!(first.steps, 6);
        assert_eq!(first.claim_attempts, 3);
        assert_eq!(first.contended_claims, 2);
        // A second batch reports only its own cost, not the running totals.
        let (_, second) = pm.batch(|m| {
            m.claim(&[(5, 20)], ClaimMode::Occupy);
        });
        assert_eq!(second.steps, 3);
        assert_eq!(second.claim_attempts, 1);
        assert_eq!(second.contended_claims, 0);
        // The machine's own cumulative counters kept counting.
        assert_eq!(pm.machine_ref().contention().attempts(), 4);
    }

    #[test]
    fn state_persists_across_batches() {
        let mut pm = PersistentMachine::from_env(8, 3);
        let ((), _) = pm.batch(|m| m.poke(3, 41));
        let (v, cost) = pm.batch(|m| m.peek(3));
        assert_eq!(v, 41);
        assert_eq!(cost.steps, 0);
    }
}
