//! Native (rayon + atomics) implementations of the three random-permutation
//! algorithms compared in Table II.

use std::sync::atomic::{AtomicU64, Ordering};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

use crate::contention::ContentionCounter;

/// An unclaimed cell in the native dart-throwing arenas.
const FREE: u64 = u64::MAX;

/// Result of a native permutation run.
#[derive(Debug, Clone)]
pub struct NativeOutcome {
    /// `order[p] = i`: item `i` ended at position `p`.
    pub order: Vec<u64>,
    /// Rounds of dart throwing (or sorting retries) used.
    pub rounds: u64,
    /// Claim attempts that lost a CAS race or hit an occupied cell — the
    /// native analogue of queue contention.
    pub contended_attempts: u64,
}

/// Checks that `order` is a permutation of `0..order.len()`.
pub fn is_permutation(order: &[u64]) -> bool {
    let n = order.len();
    let mut seen = vec![false; n];
    order.iter().all(|&x| {
        let i = x as usize;
        i < n && !std::mem::replace(&mut seen[i], true)
    })
}

fn per_item_rng(seed: u64, round: u64, item: u64) -> SmallRng {
    SmallRng::seed_from_u64(
        seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ round.wrapping_mul(0xBF58_476D_1CE4_E5B9)
            ^ item.wrapping_mul(0x94D0_49BB_1331_11EB),
    )
}

/// The sorting-based EREW algorithm: each item draws a random 64-bit key and
/// the items are sorted by key (rayon parallel sort, the stand-in for the
/// MasPar `rank32` system sort).  Key collisions trigger a retry.
pub fn sorting_based_permutation(n: usize, seed: u64) -> NativeOutcome {
    let mut rounds = 0u64;
    loop {
        rounds += 1;
        let mut keyed: Vec<(u64, u64)> = (0..n as u64)
            .into_par_iter()
            .map(|i| (per_item_rng(seed, rounds, i).gen::<u64>(), i))
            .collect();
        keyed.par_sort_unstable();
        let collision = keyed.par_windows(2).any(|w| w[0].0 == w[1].0);
        if !collision || rounds > 8 {
            return NativeOutcome {
                order: keyed.into_iter().map(|(_, i)| i).collect(),
                rounds,
                contended_attempts: 0,
            };
        }
    }
}

/// One parallel round of dart throwing: every active item CAS-claims a random
/// cell of `arena`; returns the items that failed.
fn throw_round(
    arena: &[AtomicU64],
    active: &[u64],
    seed: u64,
    round: u64,
    counter: &ContentionCounter,
) -> Vec<u64> {
    active
        .par_iter()
        .filter_map(|&item| {
            let mut rng = per_item_rng(seed, round, item);
            let cell = rng.gen_range(0..arena.len());
            let ok = arena[cell]
                .compare_exchange(FREE, item, Ordering::AcqRel, Ordering::Acquire)
                .is_ok();
            counter.record(!ok);
            if ok {
                None
            } else {
                Some(item)
            }
        })
        .collect()
}

fn compact(arena: &[AtomicU64]) -> Vec<u64> {
    arena
        .iter()
        .map(|c| c.load(Ordering::Acquire))
        .filter(|&v| v != FREE)
        .collect()
}

/// Dart throwing with a compaction scan after every round (the middle row of
/// Table II): the arena has exactly `n` cells and is rebuilt every round.
pub fn dart_scan_permutation(n: usize, seed: u64) -> NativeOutcome {
    let counter = ContentionCounter::new();
    let mut order: Vec<u64> = Vec::with_capacity(n);
    let mut active: Vec<u64> = (0..n as u64).collect();
    let mut rounds = 0u64;
    while !active.is_empty() {
        rounds += 1;
        let arena: Vec<AtomicU64> = (0..n.max(1)).map(|_| AtomicU64::new(FREE)).collect();
        let failed = throw_round(&arena, &active, seed, rounds, &counter);
        // the per-round scan: compact this round's winners onto the output
        order.extend(compact(&arena));
        active = failed;
        if rounds > 64 * (n as u64 + 2) {
            order.extend(active.drain(..));
        }
    }
    debug_assert!(is_permutation(&order));
    NativeOutcome {
        order,
        rounds,
        contended_attempts: counter.failures(),
    }
}

/// The QRQW dart-throwing algorithm (Theorem 5.1): round `r` throws into a
/// fresh subarray of `max(2·|active|, 4)` cells (initial size `2n`), and a
/// single compaction at the end concatenates the subarrays.
pub fn dart_qrqw_permutation(n: usize, seed: u64) -> NativeOutcome {
    let counter = ContentionCounter::new();
    let mut subarrays: Vec<Vec<AtomicU64>> = Vec::new();
    let mut active: Vec<u64> = (0..n as u64).collect();
    let mut rounds = 0u64;
    while !active.is_empty() {
        rounds += 1;
        let size = if rounds == 1 {
            (2 * n).max(4)
        } else {
            (2 * active.len()).max(4)
        };
        let arena: Vec<AtomicU64> = (0..size).map(|_| AtomicU64::new(FREE)).collect();
        active = throw_round(&arena, &active, seed, rounds, &counter);
        subarrays.push(arena);
        if rounds > 64 * (n as u64 + 2) {
            break;
        }
    }
    // Single end-of-run compaction over the concatenated subarrays.
    let mut order: Vec<u64> = Vec::with_capacity(n);
    for arena in &subarrays {
        order.extend(compact(arena));
    }
    order.extend(active); // unreachable in practice
    debug_assert!(is_permutation(&order));
    NativeOutcome {
        order,
        rounds,
        contended_attempts: counter.failures(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_three_algorithms_produce_permutations() {
        for n in [1usize, 2, 77, 1024] {
            assert!(is_permutation(&sorting_based_permutation(n, 1).order));
            assert!(is_permutation(&dart_scan_permutation(n, 2).order));
            assert!(is_permutation(&dart_qrqw_permutation(n, 3).order));
        }
    }

    #[test]
    fn zero_items_is_fine() {
        assert!(sorting_based_permutation(0, 1).order.is_empty());
        assert!(dart_scan_permutation(0, 1).order.is_empty());
        assert!(dart_qrqw_permutation(0, 1).order.is_empty());
    }

    #[test]
    fn qrqw_variant_sees_less_contention_than_scan_variant() {
        let n = 16_384;
        let scan = dart_scan_permutation(n, 7);
        let qrqw = dart_qrqw_permutation(n, 7);
        assert!(
            qrqw.contended_attempts < scan.contended_attempts,
            "larger fresh subarrays must reduce CAS contention ({} vs {})",
            qrqw.contended_attempts,
            scan.contended_attempts
        );
    }

    #[test]
    fn deterministic_for_fixed_seed_and_serial_pool() {
        // determinism of the *set* of claims is guaranteed; ordering may vary
        // with thread interleaving, so we only check permutation validity and
        // round counts for stability on repeated runs
        let a = dart_qrqw_permutation(2048, 5);
        let b = dart_qrqw_permutation(2048, 5);
        assert_eq!(a.rounds, b.rounds);
        assert!(is_permutation(&a.order) && is_permutation(&b.order));
    }

    #[test]
    fn different_seeds_give_different_orders() {
        let a = sorting_based_permutation(512, 1).order;
        let b = sorting_based_permutation(512, 2).order;
        assert_ne!(a, b);
    }
}
