//! Step dispatch policy for the native backend.
//!
//! [`StepPool`] decides *how* a machine step fans out over the persistent
//! worker pool (`rayon::pool`): how many threads participate, how the index
//! space is chunked, and when a step is small enough to run inline on the
//! calling thread.  The pool threads themselves are process-wide and parked
//! between steps — a `NativeMachine` never spawns threads on the step path.
//!
//! The thread count is configurable per machine (builder) and per process
//! (the `QRQW_THREADS` environment variable), mirroring how the Section 5.2
//! MasPar experiment swept machine sizes.  Determinism does not depend on
//! the choice: chunk boundaries only decide which thread computes an index,
//! never what is computed for it.

/// Environment variable overriding the native backend's thread count.
pub const THREADS_ENV: &str = "QRQW_THREADS";

/// Below this many items a step runs inline: pool dispatch costs more than
/// it saves on tiny steps.
const INLINE_CUTOFF: usize = 2048;

/// Chunks are at least this long (pre-alignment), so oversubscribed thread
/// counts cannot shred a step into cache-hostile slivers.
const MIN_CHUNK: usize = 512;

/// Chunks handed out per participating thread: > 1 gives dynamic load
/// balance when chunk costs are skewed (e.g. contended CAS ranges).
const CHUNKS_PER_THREAD: usize = 4;

pub(crate) use rayon::pool::SendPtr;

/// Per-machine dispatch policy over the process-wide worker pool.
#[derive(Debug, Clone)]
pub struct StepPool {
    threads: usize,
}

impl StepPool {
    /// Policy with an explicit thread count (clamped to at least 1; the
    /// process-wide pool additionally clamps to
    /// [`rayon::pool::MAX_POOL_THREADS`]).
    pub fn with_threads(threads: usize) -> Self {
        StepPool {
            threads: threads.clamp(1, rayon::pool::MAX_POOL_THREADS),
        }
    }

    /// Default policy: `QRQW_THREADS` if set and parseable as a positive
    /// integer, otherwise the host's available parallelism.
    pub fn from_env() -> Self {
        let threads = std::env::var(THREADS_ENV)
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&t| t > 0)
            .unwrap_or_else(rayon::current_num_threads);
        StepPool::with_threads(threads)
    }

    /// Number of threads (including the caller) a dispatched step uses.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `f(lo, hi)` over `[0, len)` in contiguous chunks whose
    /// boundaries are multiples of `align` (last chunk excepted), on the
    /// worker pool.  Blocks until all chunks finish.  Small or
    /// single-threaded dispatches run inline as one chunk.
    pub fn dispatch<F>(&self, len: usize, align: usize, f: F)
    where
        F: Fn(usize, usize) + Sync,
    {
        if len == 0 {
            return;
        }
        if self.threads <= 1 || len <= INLINE_CUTOFF.max(align) {
            f(0, len);
            return;
        }
        let raw = len
            .div_ceil(self.threads * CHUNKS_PER_THREAD)
            .max(MIN_CHUNK);
        let chunk = raw.div_ceil(align) * align;
        rayon::pool::run(len, chunk, self.threads, f);
    }
}

impl Default for StepPool {
    fn default() -> Self {
        StepPool::from_env()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[test]
    fn explicit_thread_count_is_clamped_to_at_least_one() {
        assert_eq!(StepPool::with_threads(0).threads(), 1);
        assert_eq!(StepPool::with_threads(3).threads(), 3);
    }

    #[test]
    fn dispatch_respects_alignment() {
        let pool = StepPool::with_threads(4);
        let ranges = Mutex::new(Vec::new());
        let len = 100_000;
        pool.dispatch(len, 64, |lo, hi| {
            ranges.lock().unwrap().push((lo, hi));
        });
        let mut ranges = ranges.into_inner().unwrap();
        ranges.sort_unstable();
        let mut expect = 0;
        for &(lo, hi) in &ranges {
            assert_eq!(lo % 64, 0, "chunk start {lo} not 64-aligned");
            assert_eq!(lo, expect);
            expect = hi;
        }
        assert_eq!(expect, len);
        assert!(ranges.len() > 1, "a 100k dispatch on 4 threads must chunk");
    }

    #[test]
    fn small_dispatch_runs_inline_as_one_chunk() {
        let pool = StepPool::with_threads(8);
        let ranges = Mutex::new(Vec::new());
        pool.dispatch(100, 1, |lo, hi| ranges.lock().unwrap().push((lo, hi)));
        assert_eq!(*ranges.lock().unwrap(), vec![(0, 100)]);
    }
}
