//! Step dispatch policy for the native backend.
//!
//! [`StepPool`] decides *how* a machine step fans out over the persistent
//! worker pool (`rayon::pool`): how many threads participate, which
//! [`Schedule`] assigns chunks to them, how the index space is chunked, and
//! when a step is small enough to run inline on the calling thread.  The
//! pool threads themselves are process-wide and parked between steps — a
//! `NativeMachine` never spawns threads on the step path.
//!
//! The thread count is configurable per machine (builder) and per process
//! (the `QRQW_THREADS` environment variable), mirroring how the Section 5.2
//! MasPar experiment swept machine sizes; the schedule likewise comes from
//! [`StepPool::with_schedule`] or `QRQW_SCHEDULE`.  Determinism depends on
//! neither choice: chunk boundaries are a pure function of the dispatch
//! shape under both schedules, and boundaries only decide which thread
//! computes an index, never what is computed for it.
//!
//! Multi-pass steps (the claim protocol, scan, compact) go through
//! [`StepPool::dispatch_fused`]: all passes share one pool dispatch with a
//! lightweight barrier between them, toggleable via `QRQW_FUSE` for A/B
//! measurement.  Environment overrides are validated loudly — a set-but-
//! invalid `QRQW_THREADS`, `QRQW_SCHEDULE`, or `QRQW_FUSE` panics at pool
//! construction instead of silently running a different configuration.

/// Environment variable overriding the native backend's thread count.
/// Must be a positive integer when set; anything else (including `0`)
/// makes pool construction panic — a mistyped override must never
/// silently benchmark the wrong configuration.
pub const THREADS_ENV: &str = "QRQW_THREADS";

/// Environment variable selecting the native backend's default
/// [`Schedule`] (`chunked` or `stealing`).  Any other value makes pool
/// construction panic rather than silently falling back to chunked.
pub const SCHEDULE_ENV: &str = "QRQW_SCHEDULE";

/// Environment variable toggling fused multi-pass dispatch (`1`/`true`/`on`
/// to enable — the default — `0`/`false`/`off` to disable).  Any other
/// value makes pool construction panic.  Fusion never changes results,
/// chunk boundaries, step counts, or contention totals; the knob exists
/// for A/B measurement of the dispatch overhead it removes.
pub const FUSE_ENV: &str = "QRQW_FUSE";

/// Below this many items a step runs inline: pool dispatch costs more than
/// it saves on tiny steps.
const INLINE_CUTOFF: usize = 2048;

/// Chunks are at least this long (pre-alignment), so oversubscribed thread
/// counts cannot shred a step into cache-hostile slivers.
const MIN_CHUNK: usize = 512;

/// Chunks handed out per participating thread: > 1 gives dynamic load
/// balance when chunk costs are skewed (e.g. contended CAS ranges).
const CHUNKS_PER_THREAD: usize = 4;

pub(crate) use rayon::pool::SendPtr;

/// How a dispatched step's chunks are assigned to pool threads.
///
/// Either schedule produces **bit-identical machine behaviour**: chunk
/// boundaries are a pure function of the dispatch shape, every write is
/// keyed by index, and per-processor RNG streams are keyed by
/// `(seed, step, proc)` — so the assignment of chunks to threads is
/// unobservable (pinned by `tests/determinism.rs` and the skew-adversarial
/// suite in `tests/schedule_skew.rs`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Schedule {
    /// One shared chunk counter; every idle thread claims the next chunk
    /// with a `fetch_add` (`rayon::pool::run`).
    #[default]
    Chunked,
    /// Work-stealing in the work-assisting style: chunks are
    /// pre-partitioned into one contiguous range per thread (an atomic
    /// `(lo, hi)` split index each), and threads whose range drains assist
    /// on others' remaining chunks by CAS-splitting the victim's range in
    /// half (`rayon::pool::run_stealing`).  Wins when per-chunk costs are
    /// skewed — e.g. a claim round whose collisions all land in one range.
    Stealing,
}

impl Schedule {
    /// Every schedule, in the order the harnesses report them.
    pub const ALL: [Schedule; 2] = [Schedule::Chunked, Schedule::Stealing];

    /// Stable lowercase name (`"chunked"` / `"stealing"`), also accepted by
    /// [`Schedule::parse`] and the `QRQW_SCHEDULE` environment variable.
    pub fn name(self) -> &'static str {
        match self {
            Schedule::Chunked => "chunked",
            Schedule::Stealing => "stealing",
        }
    }

    /// Parses a schedule name as printed by [`Schedule::name`].
    pub fn parse(s: &str) -> Option<Schedule> {
        Schedule::ALL.into_iter().find(|c| c.name() == s)
    }

    /// The schedule a raw `QRQW_SCHEDULE` value selects: the default
    /// ([`Schedule::Chunked`]) when unset, an error when set but not a
    /// valid schedule name.  Value-level for unit testing; the same policy
    /// `BatchPolicy::from_env` established — a mistyped override must fail
    /// loudly, not silently benchmark the wrong configuration.
    pub fn from_env_value(raw: Option<&str>) -> Result<Schedule, String> {
        match raw {
            None => Ok(Schedule::default()),
            Some(v) => Schedule::parse(v.trim()).ok_or_else(|| {
                format!("invalid {SCHEDULE_ENV}={v:?}: expected \"chunked\" or \"stealing\"")
            }),
        }
    }

    /// The schedule `QRQW_SCHEDULE` selects, defaulting to
    /// [`Schedule::Chunked`] when unset.
    ///
    /// # Panics
    ///
    /// If `QRQW_SCHEDULE` is set to anything other than a valid schedule
    /// name.
    pub fn from_env() -> Schedule {
        let raw = std::env::var(SCHEDULE_ENV).ok();
        Schedule::from_env_value(raw.as_deref()).unwrap_or_else(|e| panic!("{e}"))
    }
}

/// The thread count a raw `QRQW_THREADS` value selects: `None` when unset
/// (callers fall back to host parallelism), an error when set but not a
/// positive integer.
fn threads_from_env_value(raw: Option<&str>) -> Result<Option<usize>, String> {
    match raw {
        None => Ok(None),
        Some(v) => match v.trim().parse::<usize>() {
            Ok(t) if t > 0 => Ok(Some(t)),
            _ => Err(format!(
                "invalid {THREADS_ENV}={v:?}: expected a positive integer"
            )),
        },
    }
}

/// The fusion toggle a raw `QRQW_FUSE` value selects: enabled when unset.
fn fused_from_env_value(raw: Option<&str>) -> Result<bool, String> {
    match raw {
        None => Ok(true),
        Some(v) => match v.trim().to_ascii_lowercase().as_str() {
            "1" | "true" | "on" | "yes" => Ok(true),
            "0" | "false" | "off" | "no" => Ok(false),
            _ => Err(format!(
                "invalid {FUSE_ENV}={v:?}: expected 1/true/on or 0/false/off"
            )),
        },
    }
}

/// Reads `QRQW_FUSE`, panicking on an invalid value.
fn fused_from_env() -> bool {
    let raw = std::env::var(FUSE_ENV).ok();
    fused_from_env_value(raw.as_deref()).unwrap_or_else(|e| panic!("{e}"))
}

/// Per-machine dispatch policy over the process-wide worker pool.
#[derive(Debug, Clone)]
pub struct StepPool {
    threads: usize,
    schedule: Schedule,
    fused: bool,
}

impl StepPool {
    /// Policy with an explicit thread count (clamped to at least 1; the
    /// process-wide pool additionally clamps to
    /// [`rayon::pool::MAX_POOL_THREADS`]).  The schedule defaults to the
    /// `QRQW_SCHEDULE` environment selection and the fusion toggle to
    /// `QRQW_FUSE` (both panic on invalid values).
    pub fn with_threads(threads: usize) -> Self {
        StepPool {
            threads: threads.clamp(1, rayon::pool::MAX_POOL_THREADS),
            schedule: Schedule::from_env(),
            fused: fused_from_env(),
        }
    }

    /// Default policy: thread count from `QRQW_THREADS` (host parallelism
    /// when unset), schedule from `QRQW_SCHEDULE`, fusion from `QRQW_FUSE`.
    ///
    /// # Panics
    ///
    /// If any of those variables is set to an invalid value — a mistyped
    /// override must never silently benchmark the wrong configuration.
    pub fn from_env() -> Self {
        let raw = std::env::var(THREADS_ENV).ok();
        let threads = threads_from_env_value(raw.as_deref())
            .unwrap_or_else(|e| panic!("{e}"))
            .unwrap_or_else(rayon::current_num_threads);
        StepPool::with_threads(threads)
    }

    /// This policy with an explicit [`Schedule`], overriding the
    /// environment selection.
    pub fn with_schedule(mut self, schedule: Schedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// This policy with fused multi-pass dispatch explicitly enabled or
    /// disabled, overriding the `QRQW_FUSE` environment selection.
    pub fn with_fused(mut self, fused: bool) -> Self {
        self.fused = fused;
        self
    }

    /// Number of threads (including the caller) a dispatched step uses.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The chunk→thread assignment discipline this policy dispatches with.
    pub fn schedule(&self) -> Schedule {
        self.schedule
    }

    /// Whether multi-pass steps fuse their passes into one pool dispatch.
    pub fn fused(&self) -> bool {
        self.fused
    }

    /// Runs `f(lo, hi)` over `[0, len)` in contiguous chunks whose
    /// boundaries are multiples of `align` (last chunk excepted), on the
    /// worker pool under this policy's [`Schedule`].  Blocks until all
    /// chunks finish.  Small or single-threaded dispatches run inline as
    /// one chunk.
    pub fn dispatch<F>(&self, len: usize, align: usize, f: F)
    where
        F: Fn(usize, usize) + Sync,
    {
        if len == 0 {
            return;
        }
        if self.threads <= 1 || len <= INLINE_CUTOFF.max(align) {
            f(0, len);
            return;
        }
        let raw = len
            .div_ceil(self.threads * CHUNKS_PER_THREAD)
            .max(MIN_CHUNK);
        let chunk = raw.div_ceil(align) * align;
        match self.schedule {
            Schedule::Chunked => rayon::pool::run(len, chunk, self.threads, f),
            Schedule::Stealing => rayon::pool::run_stealing(len, chunk, self.threads, f),
        }
    }

    /// Runs a fused group of `passes` passes over `[0, len)`: pass `p`
    /// calls `f(p, lo, hi)` for every chunk.  The inline cutoff and the
    /// chunk boundaries are decided **once per group**, with exactly the
    /// same rules as [`StepPool::dispatch`], so every pass sees the
    /// boundaries `passes` separate `dispatch` calls would have seen —
    /// fusion is observably equivalent, it only removes the per-pass pool
    /// wakeup (see `rayon::pool::run_fused`).
    ///
    /// With fusion disabled (`QRQW_FUSE=0` or [`StepPool::with_fused`]),
    /// each pass is its own `dispatch` — the honest unfused baseline for
    /// A/B measurement.
    pub fn dispatch_fused<F>(&self, len: usize, align: usize, passes: usize, f: F)
    where
        F: Fn(usize, usize, usize) + Sync,
    {
        if len == 0 || passes == 0 {
            return;
        }
        if !self.fused {
            for pass in 0..passes {
                self.dispatch(len, align, |lo, hi| f(pass, lo, hi));
            }
            return;
        }
        if self.threads <= 1 || len <= INLINE_CUTOFF.max(align) {
            for pass in 0..passes {
                f(pass, 0, len);
            }
            return;
        }
        let raw = len
            .div_ceil(self.threads * CHUNKS_PER_THREAD)
            .max(MIN_CHUNK);
        let chunk = raw.div_ceil(align) * align;
        match self.schedule {
            Schedule::Chunked => rayon::pool::run_fused(len, chunk, self.threads, passes, f),
            Schedule::Stealing => {
                rayon::pool::run_fused_stealing(len, chunk, self.threads, passes, f)
            }
        }
    }
}

impl Default for StepPool {
    fn default() -> Self {
        StepPool::from_env()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[test]
    fn explicit_thread_count_is_clamped_to_at_least_one() {
        assert_eq!(StepPool::with_threads(0).threads(), 1);
        assert_eq!(StepPool::with_threads(3).threads(), 3);
    }

    #[test]
    fn dispatch_respects_alignment_under_both_schedules() {
        for schedule in Schedule::ALL {
            let pool = StepPool::with_threads(4).with_schedule(schedule);
            let ranges = Mutex::new(Vec::new());
            let len = 100_000;
            pool.dispatch(len, 64, |lo, hi| {
                ranges.lock().unwrap().push((lo, hi));
            });
            let mut ranges = ranges.into_inner().unwrap();
            ranges.sort_unstable();
            let mut expect = 0;
            for &(lo, hi) in &ranges {
                assert_eq!(lo % 64, 0, "[{schedule:?}] chunk start {lo} not 64-aligned");
                assert_eq!(lo, expect, "[{schedule:?}]");
                expect = hi;
            }
            assert_eq!(expect, len);
            assert!(
                ranges.len() > 1,
                "[{schedule:?}] a 100k dispatch on 4 threads must chunk"
            );
        }
    }

    #[test]
    fn both_schedules_produce_identical_chunk_boundaries() {
        let boundaries = |schedule: Schedule| {
            let pool = StepPool::with_threads(5).with_schedule(schedule);
            let ranges = Mutex::new(Vec::new());
            pool.dispatch(250_000, 8, |lo, hi| ranges.lock().unwrap().push((lo, hi)));
            let mut ranges = ranges.into_inner().unwrap();
            ranges.sort_unstable();
            ranges
        };
        assert_eq!(
            boundaries(Schedule::Chunked),
            boundaries(Schedule::Stealing)
        );
    }

    #[test]
    fn small_dispatch_runs_inline_as_one_chunk() {
        for schedule in Schedule::ALL {
            let pool = StepPool::with_threads(8).with_schedule(schedule);
            let ranges = Mutex::new(Vec::new());
            pool.dispatch(100, 1, |lo, hi| ranges.lock().unwrap().push((lo, hi)));
            assert_eq!(*ranges.lock().unwrap(), vec![(0, 100)]);
        }
    }

    #[test]
    fn schedule_names_round_trip_and_unknown_names_are_rejected() {
        for schedule in Schedule::ALL {
            assert_eq!(Schedule::parse(schedule.name()), Some(schedule));
        }
        assert_eq!(Schedule::parse("fifo"), None);
        assert_eq!(Schedule::default(), Schedule::Chunked);
    }

    #[test]
    fn unset_env_values_select_the_defaults() {
        assert_eq!(Schedule::from_env_value(None), Ok(Schedule::Chunked));
        assert_eq!(threads_from_env_value(None), Ok(None));
        assert_eq!(fused_from_env_value(None), Ok(true));
    }

    #[test]
    fn valid_env_values_are_accepted() {
        assert_eq!(
            Schedule::from_env_value(Some(" stealing ")),
            Ok(Schedule::Stealing)
        );
        assert_eq!(threads_from_env_value(Some(" 8 ")), Ok(Some(8)));
        assert_eq!(fused_from_env_value(Some("0")), Ok(false));
        assert_eq!(fused_from_env_value(Some("ON")), Ok(true));
        assert_eq!(fused_from_env_value(Some("off")), Ok(false));
    }

    #[test]
    fn invalid_env_values_are_rejected_loudly_with_the_variable_name() {
        let schedule = Schedule::from_env_value(Some("fifo")).unwrap_err();
        assert!(schedule.contains(SCHEDULE_ENV), "{schedule}");
        for bad in ["zero", "-1", "", "1.5"] {
            let threads = threads_from_env_value(Some(bad)).unwrap_err();
            assert!(threads.contains(THREADS_ENV), "{threads}");
        }
        let zero = threads_from_env_value(Some("0")).unwrap_err();
        assert!(zero.contains(THREADS_ENV), "{zero}");
        let fuse = fused_from_env_value(Some("maybe")).unwrap_err();
        assert!(fuse.contains(FUSE_ENV), "{fuse}");
    }

    #[test]
    fn fused_dispatch_covers_every_pass_with_identical_boundaries() {
        for schedule in Schedule::ALL {
            for fused in [true, false] {
                let pool = StepPool::with_threads(4)
                    .with_schedule(schedule)
                    .with_fused(fused);
                let unfused_ranges = {
                    let seen = Mutex::new(Vec::new());
                    pool.dispatch(100_000, 64, |lo, hi| seen.lock().unwrap().push((lo, hi)));
                    let mut r = seen.into_inner().unwrap();
                    r.sort_unstable();
                    r
                };
                let seen = Mutex::new(vec![Vec::new(); 3]);
                pool.dispatch_fused(100_000, 64, 3, |pass, lo, hi| {
                    seen.lock().unwrap()[pass].push((lo, hi));
                });
                for (pass, mut ranges) in seen.into_inner().unwrap().into_iter().enumerate() {
                    ranges.sort_unstable();
                    assert_eq!(
                        ranges, unfused_ranges,
                        "{schedule:?} fused={fused} pass={pass}"
                    );
                }
            }
        }
    }

    #[test]
    fn small_fused_dispatch_runs_inline_in_pass_order() {
        let pool = StepPool::with_threads(8).with_fused(true);
        let trace = Mutex::new(Vec::new());
        pool.dispatch_fused(100, 1, 3, |pass, lo, hi| {
            trace.lock().unwrap().push((pass, lo, hi));
        });
        assert_eq!(
            *trace.lock().unwrap(),
            vec![(0, 0, 100), (1, 0, 100), (2, 0, 100)]
        );
    }
}
