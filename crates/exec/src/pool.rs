//! Step dispatch policy for the native backend.
//!
//! [`StepPool`] decides *how* a machine step fans out over the persistent
//! worker pool (`rayon::pool`): how many threads participate, which
//! [`Schedule`] assigns chunks to them, how the index space is chunked, and
//! when a step is small enough to run inline on the calling thread.  The
//! pool threads themselves are process-wide and parked between steps — a
//! `NativeMachine` never spawns threads on the step path.
//!
//! The thread count is configurable per machine (builder) and per process
//! (the `QRQW_THREADS` environment variable), mirroring how the Section 5.2
//! MasPar experiment swept machine sizes; the schedule likewise comes from
//! [`StepPool::with_schedule`] or `QRQW_SCHEDULE`.  Determinism depends on
//! neither choice: chunk boundaries are a pure function of the dispatch
//! shape under both schedules, and boundaries only decide which thread
//! computes an index, never what is computed for it.

/// Environment variable overriding the native backend's thread count.
pub const THREADS_ENV: &str = "QRQW_THREADS";

/// Environment variable selecting the native backend's default
/// [`Schedule`] (`chunked` or `stealing`; anything else falls back to
/// chunked).
pub const SCHEDULE_ENV: &str = "QRQW_SCHEDULE";

/// Below this many items a step runs inline: pool dispatch costs more than
/// it saves on tiny steps.
const INLINE_CUTOFF: usize = 2048;

/// Chunks are at least this long (pre-alignment), so oversubscribed thread
/// counts cannot shred a step into cache-hostile slivers.
const MIN_CHUNK: usize = 512;

/// Chunks handed out per participating thread: > 1 gives dynamic load
/// balance when chunk costs are skewed (e.g. contended CAS ranges).
const CHUNKS_PER_THREAD: usize = 4;

pub(crate) use rayon::pool::SendPtr;

/// How a dispatched step's chunks are assigned to pool threads.
///
/// Either schedule produces **bit-identical machine behaviour**: chunk
/// boundaries are a pure function of the dispatch shape, every write is
/// keyed by index, and per-processor RNG streams are keyed by
/// `(seed, step, proc)` — so the assignment of chunks to threads is
/// unobservable (pinned by `tests/determinism.rs` and the skew-adversarial
/// suite in `tests/schedule_skew.rs`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Schedule {
    /// One shared chunk counter; every idle thread claims the next chunk
    /// with a `fetch_add` (`rayon::pool::run`).
    #[default]
    Chunked,
    /// Work-stealing in the work-assisting style: chunks are
    /// pre-partitioned into one contiguous range per thread (an atomic
    /// `(lo, hi)` split index each), and threads whose range drains assist
    /// on others' remaining chunks by CAS-splitting the victim's range in
    /// half (`rayon::pool::run_stealing`).  Wins when per-chunk costs are
    /// skewed — e.g. a claim round whose collisions all land in one range.
    Stealing,
}

impl Schedule {
    /// Every schedule, in the order the harnesses report them.
    pub const ALL: [Schedule; 2] = [Schedule::Chunked, Schedule::Stealing];

    /// Stable lowercase name (`"chunked"` / `"stealing"`), also accepted by
    /// [`Schedule::parse`] and the `QRQW_SCHEDULE` environment variable.
    pub fn name(self) -> &'static str {
        match self {
            Schedule::Chunked => "chunked",
            Schedule::Stealing => "stealing",
        }
    }

    /// Parses a schedule name as printed by [`Schedule::name`].
    pub fn parse(s: &str) -> Option<Schedule> {
        Schedule::ALL.into_iter().find(|c| c.name() == s)
    }

    /// The schedule `QRQW_SCHEDULE` selects, defaulting to
    /// [`Schedule::Chunked`] when unset or unparseable.
    pub fn from_env() -> Schedule {
        std::env::var(SCHEDULE_ENV)
            .ok()
            .and_then(|v| Schedule::parse(v.trim()))
            .unwrap_or_default()
    }
}

/// Per-machine dispatch policy over the process-wide worker pool.
#[derive(Debug, Clone)]
pub struct StepPool {
    threads: usize,
    schedule: Schedule,
}

impl StepPool {
    /// Policy with an explicit thread count (clamped to at least 1; the
    /// process-wide pool additionally clamps to
    /// [`rayon::pool::MAX_POOL_THREADS`]).  The schedule defaults to the
    /// `QRQW_SCHEDULE` environment selection.
    pub fn with_threads(threads: usize) -> Self {
        StepPool {
            threads: threads.clamp(1, rayon::pool::MAX_POOL_THREADS),
            schedule: Schedule::from_env(),
        }
    }

    /// Default policy: `QRQW_THREADS` if set and parseable as a positive
    /// integer, otherwise the host's available parallelism; schedule from
    /// `QRQW_SCHEDULE`.
    pub fn from_env() -> Self {
        let threads = std::env::var(THREADS_ENV)
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&t| t > 0)
            .unwrap_or_else(rayon::current_num_threads);
        StepPool::with_threads(threads)
    }

    /// This policy with an explicit [`Schedule`], overriding the
    /// environment selection.
    pub fn with_schedule(mut self, schedule: Schedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// Number of threads (including the caller) a dispatched step uses.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The chunk→thread assignment discipline this policy dispatches with.
    pub fn schedule(&self) -> Schedule {
        self.schedule
    }

    /// Runs `f(lo, hi)` over `[0, len)` in contiguous chunks whose
    /// boundaries are multiples of `align` (last chunk excepted), on the
    /// worker pool under this policy's [`Schedule`].  Blocks until all
    /// chunks finish.  Small or single-threaded dispatches run inline as
    /// one chunk.
    pub fn dispatch<F>(&self, len: usize, align: usize, f: F)
    where
        F: Fn(usize, usize) + Sync,
    {
        if len == 0 {
            return;
        }
        if self.threads <= 1 || len <= INLINE_CUTOFF.max(align) {
            f(0, len);
            return;
        }
        let raw = len
            .div_ceil(self.threads * CHUNKS_PER_THREAD)
            .max(MIN_CHUNK);
        let chunk = raw.div_ceil(align) * align;
        match self.schedule {
            Schedule::Chunked => rayon::pool::run(len, chunk, self.threads, f),
            Schedule::Stealing => rayon::pool::run_stealing(len, chunk, self.threads, f),
        }
    }
}

impl Default for StepPool {
    fn default() -> Self {
        StepPool::from_env()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[test]
    fn explicit_thread_count_is_clamped_to_at_least_one() {
        assert_eq!(StepPool::with_threads(0).threads(), 1);
        assert_eq!(StepPool::with_threads(3).threads(), 3);
    }

    #[test]
    fn dispatch_respects_alignment_under_both_schedules() {
        for schedule in Schedule::ALL {
            let pool = StepPool::with_threads(4).with_schedule(schedule);
            let ranges = Mutex::new(Vec::new());
            let len = 100_000;
            pool.dispatch(len, 64, |lo, hi| {
                ranges.lock().unwrap().push((lo, hi));
            });
            let mut ranges = ranges.into_inner().unwrap();
            ranges.sort_unstable();
            let mut expect = 0;
            for &(lo, hi) in &ranges {
                assert_eq!(lo % 64, 0, "[{schedule:?}] chunk start {lo} not 64-aligned");
                assert_eq!(lo, expect, "[{schedule:?}]");
                expect = hi;
            }
            assert_eq!(expect, len);
            assert!(
                ranges.len() > 1,
                "[{schedule:?}] a 100k dispatch on 4 threads must chunk"
            );
        }
    }

    #[test]
    fn both_schedules_produce_identical_chunk_boundaries() {
        let boundaries = |schedule: Schedule| {
            let pool = StepPool::with_threads(5).with_schedule(schedule);
            let ranges = Mutex::new(Vec::new());
            pool.dispatch(250_000, 8, |lo, hi| ranges.lock().unwrap().push((lo, hi)));
            let mut ranges = ranges.into_inner().unwrap();
            ranges.sort_unstable();
            ranges
        };
        assert_eq!(
            boundaries(Schedule::Chunked),
            boundaries(Schedule::Stealing)
        );
    }

    #[test]
    fn small_dispatch_runs_inline_as_one_chunk() {
        for schedule in Schedule::ALL {
            let pool = StepPool::with_threads(8).with_schedule(schedule);
            let ranges = Mutex::new(Vec::new());
            pool.dispatch(100, 1, |lo, hi| ranges.lock().unwrap().push((lo, hi)));
            assert_eq!(*ranges.lock().unwrap(), vec![(0, 100)]);
        }
    }

    #[test]
    fn schedule_names_round_trip_and_unknown_names_are_rejected() {
        for schedule in Schedule::ALL {
            assert_eq!(Schedule::parse(schedule.name()), Some(schedule));
        }
        assert_eq!(Schedule::parse("fifo"), None);
        assert_eq!(Schedule::default(), Schedule::Chunked);
    }
}
