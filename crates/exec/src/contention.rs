//! Contention instrumentation for the native executor.

use std::sync::atomic::{AtomicU64, Ordering};

/// Counts claim attempts and failures across threads.
///
/// On the QRQW PRAM the cost of a step is the maximum number of processors
/// queued on one cell; natively the observable analogue is how often a
/// compare-and-swap loses.  The counter is cheap (relaxed increments) and is
/// reported alongside wall-clock times by the Table II harness.
#[derive(Debug, Default)]
pub struct ContentionCounter {
    attempts: AtomicU64,
    failures: AtomicU64,
}

impl ContentionCounter {
    /// A fresh counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one claim attempt and whether it failed.
    #[inline]
    pub fn record(&self, failed: bool) {
        self.add(1, failed as u64);
    }

    /// Records a batch of `attempts` claim attempts, `failures` of which
    /// failed — two atomic adds total, so a claim pass can aggregate its
    /// bookkeeping per chunk instead of paying per-attempt increments.
    #[inline]
    pub fn add(&self, attempts: u64, failures: u64) {
        debug_assert!(failures <= attempts);
        if attempts > 0 {
            self.attempts.fetch_add(attempts, Ordering::Relaxed);
        }
        if failures > 0 {
            self.failures.fetch_add(failures, Ordering::Relaxed);
        }
    }

    /// Total claim attempts recorded.
    pub fn attempts(&self) -> u64 {
        self.attempts.load(Ordering::Relaxed)
    }

    /// Total failed attempts recorded.
    pub fn failures(&self) -> u64 {
        self.failures.load(Ordering::Relaxed)
    }

    /// Overwrites both totals.  Used by snapshot restore to roll the
    /// instrumentation back in lockstep with the machine state; per-batch
    /// delta attribution (see [`crate::PersistentMachine`]) only stays
    /// coherent if the counters rewind together with `steps_executed`.
    pub fn store(&self, attempts: u64, failures: u64) {
        debug_assert!(failures <= attempts);
        self.attempts.store(attempts, Ordering::Relaxed);
        self.failures.store(failures, Ordering::Relaxed);
    }

    /// Failure ratio (0 when nothing was recorded).
    pub fn failure_ratio(&self) -> f64 {
        let a = self.attempts();
        if a == 0 {
            0.0
        } else {
            self.failures() as f64 / a as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_attempts_and_failures() {
        let c = ContentionCounter::new();
        c.record(false);
        c.record(true);
        c.record(true);
        assert_eq!(c.attempts(), 3);
        assert_eq!(c.failures(), 2);
        assert!((c.failure_ratio() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn empty_counter_has_zero_ratio() {
        let c = ContentionCounter::new();
        assert_eq!(c.failure_ratio(), 0.0);
    }

    #[test]
    fn is_safe_to_share_across_threads() {
        use rayon::prelude::*;
        let c = ContentionCounter::new();
        (0..10_000)
            .into_par_iter()
            .for_each(|i| c.record(i % 4 == 0));
        assert_eq!(c.attempts(), 10_000);
        assert_eq!(c.failures(), 2_500);
    }
}
