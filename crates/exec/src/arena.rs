//! The sharded shared-memory arena behind [`crate::NativeMachine`].
//!
//! The arena used to be one monolithic `Vec<AtomicU64>`, which made every
//! growth a reallocation: the allocator memcpy-moved the whole old arena
//! into a larger block, transiently holding ~2× the peak footprint and
//! serializing growth behind one giant copy.  That cliff capped practical
//! runs near 2²⁴ cells — far below the sizes where the paper's contention
//! charging (and the "millions of users" service goals) get interesting.
//!
//! `Arena` stores cells in independently allocated, cache-line-aligned
//! **shards** of [`SHARD_CELLS`] cells each (a power of two), indexed by a
//! flat pointer table:
//!
//! ```text
//!  cell address addr ──┬── addr >> SHARD_SHIFT ──▶ shard index
//!                      └── addr &  SHARD_MASK  ──▶ offset within shard
//!
//!  shards: [ ptr₀ │ ptr₁ │ ptr₂ │ … ]     (the only thing that ever
//!             │      │      │              relocates on growth)
//!             ▼      ▼      ▼
//!           2 MiB  2 MiB  2 MiB   64-byte-aligned cell blocks
//!           shard  shard  shard   (cells NEVER move once allocated)
//! ```
//!
//! **The grow-without-move invariant**: `Arena::reserve_shards` only ever
//! *appends* shards.  Existing cells keep their addresses for the lifetime
//! of the machine, growth allocates exactly the new shards (no transient
//! 2× footprint, no copy of live data), and the new shards' EMPTY fill
//! parallelizes over the step pool like any other bulk memory operation.
//! The hot-path address computation stays a shift plus a mask into a
//! pointer table that fits in cache (2³⁰ cells → 4096 shard pointers).
//!
//! Cells beyond `Arena::len` (the logical size) but within allocated
//! shards are kept [`EMPTY`]: every write path is bounds-checked against
//! the logical size, so the slack of the last shard can never hold stale
//! data — which is what lets [`crate::NativeMachine`]'s `alloc` skip
//! re-clearing freshly grown cells.

use std::alloc::{alloc, dealloc, handle_alloc_error, Layout};
use std::ptr::NonNull;
use std::sync::atomic::AtomicU64;

use qrqw_sim::EMPTY;

/// Cells per shard: 2¹⁸ cells = 2 MiB per shard.  Small enough that tiny
/// test machines don't over-commit, large enough that a 2³⁰-cell arena is
/// only 4096 shard pointers (one L1-resident table).
pub const SHARD_CELLS: usize = 1 << 18;

/// Shift of the cell→shard map: `addr >> SHARD_SHIFT` is the shard index.
pub const SHARD_SHIFT: u32 = SHARD_CELLS.trailing_zeros();

/// Mask of the cell→shard map: `addr & SHARD_MASK` is the in-shard offset.
pub const SHARD_MASK: usize = SHARD_CELLS - 1;

/// Alignment of every shard allocation (and therefore of cell 0 of every
/// shard): one cache line, so shard starts never false-share with foreign
/// allocations.
pub const CACHE_LINE: usize = 64;

const SHARD_BYTES: usize = SHARD_CELLS * std::mem::size_of::<AtomicU64>();

const _: () = assert!(
    SHARD_CELLS.is_power_of_two(),
    "shift+mask map needs a power of two"
);
const _: () = assert!(
    EMPTY == u64::MAX,
    "byte-fill EMPTY initialization requires all-ones EMPTY"
);

fn shard_layout() -> Layout {
    // Size and alignment are compile-time constants; the layout is valid.
    Layout::from_size_align(SHARD_BYTES, CACHE_LINE).expect("shard layout")
}

/// One independently allocated, cache-line-aligned block of
/// [`SHARD_CELLS`] cells.
struct Shard {
    cells: NonNull<AtomicU64>,
}

// Safety: a Shard is a plain block of atomic cells; all access goes
// through `&Arena` under the machine's aliasing discipline.
unsafe impl Send for Shard {}
unsafe impl Sync for Shard {}

impl Shard {
    /// Allocates one shard, *uninitialized* — the caller must EMPTY-fill
    /// it (via [`Arena::fill_empty`]) before any cell reference is formed.
    fn alloc_uninit() -> Shard {
        let layout = shard_layout();
        // Safety: the layout has non-zero size.
        let ptr = unsafe { alloc(layout) };
        match NonNull::new(ptr.cast::<AtomicU64>()) {
            Some(cells) => Shard { cells },
            None => handle_alloc_error(layout),
        }
    }
}

impl Drop for Shard {
    fn drop(&mut self) {
        // Safety: allocated by `alloc_uninit` with the same layout.
        unsafe { dealloc(self.cells.as_ptr().cast(), shard_layout()) };
    }
}

/// A snapshot of an arena's shape, for harnesses and the service layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArenaStats {
    /// Logical size: the number of addressable cells.
    pub cells: usize,
    /// Allocated shards ([`SHARD_CELLS`] cells each).
    pub shards: usize,
    /// Cells per shard (the compile-time [`SHARD_CELLS`] constant, carried
    /// so reports stay meaningful if the constant is retuned).
    pub shard_cells: usize,
}

impl ArenaStats {
    /// Bytes of cell storage the shards pin resident.
    pub fn resident_bytes(&self) -> usize {
        self.shards * SHARD_CELLS * std::mem::size_of::<AtomicU64>()
    }
}

/// The sharded cell store.  See the module docs for the layout and the
/// grow-without-move invariant.
#[derive(Default)]
pub(crate) struct Arena {
    shards: Vec<Shard>,
    /// Logical size in cells; every cell in `len..capacity()` is EMPTY.
    len: usize,
}

impl Arena {
    /// Logical size in cells.
    #[inline(always)]
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Allocated size in cells (a multiple of [`SHARD_CELLS`]).
    pub(crate) fn capacity(&self) -> usize {
        self.shards.len() << SHARD_SHIFT
    }

    /// The arena's shape.
    pub(crate) fn stats(&self) -> ArenaStats {
        ArenaStats {
            cells: self.len,
            shards: self.shards.len(),
            shard_cells: SHARD_CELLS,
        }
    }

    /// Appends (uninitialized) shards until `size` cells fit, and returns
    /// the cell range the *new* shards cover — the caller must EMPTY-fill
    /// that range before publishing any of it via [`Arena::set_len`].
    /// Existing shards are untouched: cells never move.
    pub(crate) fn reserve_shards(&mut self, size: usize) -> std::ops::Range<usize> {
        let old_cap = self.capacity();
        let need = size.div_ceil(SHARD_CELLS);
        while self.shards.len() < need {
            self.shards.push(Shard::alloc_uninit());
        }
        old_cap..self.capacity()
    }

    /// Publishes cells up to `len` (which must be allocated and
    /// EMPTY-filled).  The logical size never shrinks.
    pub(crate) fn set_len(&mut self, len: usize) {
        assert!(len <= self.capacity(), "set_len past allocated shards");
        self.len = self.len.max(len);
    }

    /// The cell at `addr`.  Panics when `addr` is outside the logical
    /// size — the same bounds discipline the monolithic `Vec` had.
    #[inline(always)]
    pub(crate) fn cell(&self, addr: usize) -> &AtomicU64 {
        assert!(
            addr < self.len,
            "address {addr} outside shared memory of size {}",
            self.len
        );
        // Safety: addr < len ≤ capacity, so the shard exists and was
        // EMPTY-filled before being published by `set_len`.
        unsafe {
            let shard = self.shards.get_unchecked(addr >> SHARD_SHIFT);
            &*shard.cells.as_ptr().add(addr & SHARD_MASK)
        }
    }

    /// Hints the cache that the cell at `addr` is about to be accessed.
    #[inline(always)]
    pub(crate) fn prefetch(&self, addr: usize) {
        #[cfg(target_arch = "x86_64")]
        if addr < self.len {
            // Safety: prefetch is a pure hint; the address is in bounds.
            unsafe {
                let shard = self.shards.get_unchecked(addr >> SHARD_SHIFT);
                core::arch::x86_64::_mm_prefetch::<{ core::arch::x86_64::_MM_HINT_T0 }>(
                    shard.cells.as_ptr().add(addr & SHARD_MASK).cast::<i8>(),
                );
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        let _ = addr;
    }

    /// Raw address of the cell at `addr` — for the no-move and alignment
    /// assertions of the test suite.
    pub(crate) fn cell_addr(&self, addr: usize) -> usize {
        self.cell(addr) as *const AtomicU64 as usize
    }

    /// Runs `f(shard_ptr, seg_len)` over the shard segments covering
    /// `start..start + len`, where `shard_ptr` points at the segment's
    /// first cell.  Bounds are checked against *capacity*, not the logical
    /// size, so the EMPTY fill of fresh shards can use it too.
    ///
    /// # Safety
    /// The caller must hold the arena quiescent for the touched range (no
    /// concurrent conflicting raw access), as all bulk callers do: they run
    /// under `&mut NativeMachine` with disjoint per-chunk ranges.
    unsafe fn for_segments(
        &self,
        start: usize,
        len: usize,
        mut f: impl FnMut(*mut AtomicU64, usize),
    ) {
        debug_assert!(
            start + len <= self.capacity(),
            "segment walk past allocated shards"
        );
        let mut addr = start;
        let mut left = len;
        while left > 0 {
            let off = addr & SHARD_MASK;
            let seg = (SHARD_CELLS - off).min(left);
            let shard = self.shards.get_unchecked(addr >> SHARD_SHIFT);
            f(shard.cells.as_ptr().add(off), seg);
            addr += seg;
            left -= seg;
        }
    }

    /// Byte-fills `start..start + len` with [`EMPTY`] (all-ones), walking
    /// shard segments.  Works on still-unpublished (uninitialized) shards.
    ///
    /// # Safety
    /// As for [`Arena::for_segments`]; disjoint ranges may run in parallel.
    pub(crate) unsafe fn fill_empty(&self, start: usize, len: usize) {
        self.for_segments(start, len, |ptr, seg| {
            std::ptr::write_bytes(
                ptr.cast::<u8>(),
                0xFF,
                seg * std::mem::size_of::<AtomicU64>(),
            );
        });
    }

    /// Copies `src` into the cells at `start..`, walking shard segments.
    ///
    /// # Safety
    /// As for [`Arena::for_segments`]; the range must be within the logical
    /// size.
    pub(crate) unsafe fn copy_in(&self, start: usize, src: &[u64]) {
        debug_assert!(start + src.len() <= self.len);
        let mut done = 0usize;
        self.for_segments(start, src.len(), |ptr, seg| {
            // `u64` and `AtomicU64` share layout.
            std::ptr::copy_nonoverlapping(src.as_ptr().add(done), ptr.cast::<u64>(), seg);
            done += seg;
        });
    }

    /// Copies the cells at `start..start + len` out to `dst`, walking shard
    /// segments.
    ///
    /// # Safety
    /// As for [`Arena::for_segments`]; additionally `dst` must be valid for
    /// `len` writes, and the range must be within the logical size.
    pub(crate) unsafe fn copy_out(&self, start: usize, dst: *mut u64, len: usize) {
        debug_assert!(start + len <= self.len);
        let mut done = 0usize;
        self.for_segments(start, len, |ptr, seg| {
            std::ptr::copy_nonoverlapping(ptr.cast::<u64>().cast_const(), dst.add(done), seg);
            done += seg;
        });
    }
}

impl std::fmt::Debug for Arena {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Arena")
            .field("cells", &self.len)
            .field("shards", &self.shards.len())
            .field("shard_cells", &SHARD_CELLS)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering;

    fn filled(size: usize) -> Arena {
        let mut a = Arena::default();
        let fresh = a.reserve_shards(size);
        unsafe { a.fill_empty(fresh.start, fresh.len()) };
        a.set_len(size);
        a
    }

    #[test]
    fn shard_map_is_shift_plus_mask_at_boundaries() {
        // First and last cell of a shard, and the first cell of the next:
        // the map must cross exactly at the power-of-two boundary.
        for (addr, shard, off) in [
            (0usize, 0usize, 0usize),
            (1, 0, 1),
            (SHARD_CELLS - 1, 0, SHARD_CELLS - 1),
            (SHARD_CELLS, 1, 0),
            (SHARD_CELLS + 1, 1, 1),
            (2 * SHARD_CELLS - 1, 1, SHARD_CELLS - 1),
            (2 * SHARD_CELLS, 2, 0),
            (5 * SHARD_CELLS + 17, 5, 17),
        ] {
            assert_eq!(addr >> SHARD_SHIFT, shard, "shard of {addr}");
            assert_eq!(addr & SHARD_MASK, off, "offset of {addr}");
        }
        assert_eq!(1usize << SHARD_SHIFT, SHARD_CELLS);
        assert_eq!(SHARD_MASK, SHARD_CELLS - 1);
    }

    #[test]
    fn cells_are_empty_filled_and_shard_starts_cache_line_aligned() {
        let a = filled(2 * SHARD_CELLS + 3);
        assert_eq!(a.stats().shards, 3);
        assert_eq!(a.len(), 2 * SHARD_CELLS + 3);
        for addr in [0, SHARD_CELLS - 1, SHARD_CELLS, 2 * SHARD_CELLS + 2] {
            assert_eq!(a.cell(addr).load(Ordering::Relaxed), EMPTY, "cell {addr}");
        }
        for shard in 0..3 {
            assert_eq!(
                a.cell_addr(shard * SHARD_CELLS) % CACHE_LINE,
                0,
                "shard {shard} start must be cache-line aligned"
            );
        }
        // Adjacent cells within a shard are contiguous; cells across a
        // shard boundary generally are not.
        assert_eq!(a.cell_addr(1) - a.cell_addr(0), 8);
    }

    #[test]
    fn growth_appends_shards_without_moving_existing_cells() {
        let mut a = filled(10);
        a.cell(3).store(42, Ordering::Relaxed);
        let before: Vec<usize> = [0, 3, 9].iter().map(|&x| a.cell_addr(x)).collect();
        // Grow by many shards: the pointer table reallocates, cells don't.
        let fresh = a.reserve_shards(7 * SHARD_CELLS + 5);
        assert_eq!(fresh, SHARD_CELLS..8 * SHARD_CELLS);
        unsafe { a.fill_empty(fresh.start, fresh.len()) };
        a.set_len(7 * SHARD_CELLS + 5);
        let after: Vec<usize> = [0, 3, 9].iter().map(|&x| a.cell_addr(x)).collect();
        assert_eq!(before, after, "growth must never move existing cells");
        assert_eq!(a.cell(3).load(Ordering::Relaxed), 42);
        assert_eq!(a.cell(7 * SHARD_CELLS + 4).load(Ordering::Relaxed), EMPTY);
    }

    #[test]
    fn growth_within_the_last_shard_allocates_nothing() {
        let mut a = filled(10);
        let fresh = a.reserve_shards(SHARD_CELLS);
        assert!(fresh.is_empty(), "the first shard already covers this");
        a.set_len(SHARD_CELLS);
        assert_eq!(a.stats().shards, 1);
        assert_eq!(a.cell(SHARD_CELLS - 1).load(Ordering::Relaxed), EMPTY);
    }

    #[test]
    #[should_panic(expected = "outside shared memory")]
    fn out_of_bounds_cell_access_panics() {
        let a = filled(10);
        let _ = a.cell(10);
    }

    #[test]
    fn bulk_copies_cross_shard_boundaries() {
        let n = SHARD_CELLS + 100;
        let a = filled(n);
        let src: Vec<u64> = (0..200u64).collect();
        let base = SHARD_CELLS - 100; // straddles the shard 0 / shard 1 seam
        unsafe { a.copy_in(base, &src) };
        let mut out = vec![0u64; 200];
        unsafe { a.copy_out(base, out.as_mut_ptr(), 200) };
        assert_eq!(out, src);
        assert_eq!(a.cell(SHARD_CELLS).load(Ordering::Relaxed), 100);
        assert_eq!(a.cell(base - 1).load(Ordering::Relaxed), EMPTY);
    }

    #[test]
    fn stats_report_the_shape() {
        let a = filled(3 * SHARD_CELLS + 1);
        let s = a.stats();
        assert_eq!(s.cells, 3 * SHARD_CELLS + 1);
        assert_eq!(s.shards, 4);
        assert_eq!(s.shard_cells, SHARD_CELLS);
        assert_eq!(s.resident_bytes(), 4 * SHARD_CELLS * 8);
    }
}
