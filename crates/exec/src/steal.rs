//! [`StealingMachine`]: the native backend pinned to work-stealing
//! dispatch.
//!
//! A [`NativeMachine`] picks its chunk [`Schedule`] from the builder or the
//! `QRQW_SCHEDULE` environment variable, which is right for interactive
//! use but wrong for anything that needs a *type* whose
//! [`Machine::with_seed`] constructor is guaranteed to be work-stealing —
//! the backend registry's `native-steal` entry, the `parity_suite!`
//! instantiation, and the thread-sweep harnesses all construct machines
//! through the trait.  This newtype is that type: a plain delegation shell
//! around [`NativeMachine`] whose every constructor forces
//! [`Schedule::Stealing`], reporting itself as backend `"native-steal"`.
//!
//! There is deliberately no stealing-specific execution code here: both
//! schedules run the *same* `NativeMachine` step implementations over the
//! same chunk boundaries, so the two backends are bit-identical by
//! construction and differ only in which pool thread executes a chunk
//! (`tests/schedule_skew.rs` pins this under adversarial skew).

use qrqw_sim::{ClaimMode, CostReport, Machine, MachineProc};

use crate::contention::ContentionCounter;
use crate::machine::NativeMachine;
use crate::pool::{Schedule, StepPool};

/// The native [`Machine`] backend with work-stealing chunk dispatch.
pub struct StealingMachine(NativeMachine);

impl StealingMachine {
    /// Creates a machine with `mem_size` cells (all [`qrqw_sim::EMPTY`])
    /// and seed 0.
    pub fn new(mem_size: usize) -> Self {
        Machine::with_seed(mem_size, 0)
    }

    /// Creates a machine with an explicit thread count (stealing dispatch,
    /// regardless of `QRQW_SCHEDULE`).
    pub fn with_threads(mem_size: usize, seed: u64, threads: usize) -> Self {
        StealingMachine(NativeMachine::with_pool(
            mem_size,
            seed,
            StepPool::with_threads(threads).with_schedule(Schedule::Stealing),
        ))
    }

    /// Number of threads (including the caller) this machine's steps use.
    pub fn threads(&self) -> usize {
        self.0.threads()
    }

    /// The contention instrumentation of this machine.
    pub fn contention(&self) -> &ContentionCounter {
        self.0.contention()
    }
}

impl std::fmt::Debug for StealingMachine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

impl Machine for StealingMachine {
    fn with_seed(mem_size: usize, seed: u64) -> Self {
        StealingMachine(NativeMachine::with_pool(
            mem_size,
            seed,
            StepPool::from_env().with_schedule(Schedule::Stealing),
        ))
    }

    fn backend(&self) -> &'static str {
        self.0.backend()
    }

    fn seed(&self) -> u64 {
        self.0.seed()
    }

    fn steps_executed(&self) -> u64 {
        self.0.steps_executed()
    }

    fn ensure_memory(&mut self, size: usize) {
        self.0.ensure_memory(size)
    }

    fn alloc(&mut self, len: usize) -> usize {
        self.0.alloc(len)
    }

    fn release_to(&mut self, base: usize) {
        self.0.release_to(base)
    }

    fn heap_top(&self) -> usize {
        self.0.heap_top()
    }

    fn load(&mut self, base: usize, values: &[u64]) {
        self.0.load(base, values)
    }

    fn dump(&self, base: usize, len: usize) -> Vec<u64> {
        self.0.dump(base, len)
    }

    fn peek(&self, addr: usize) -> u64 {
        self.0.peek(addr)
    }

    fn poke(&mut self, addr: usize, value: u64) {
        self.0.poke(addr, value)
    }

    fn clear_region(&mut self, base: usize, len: usize) {
        self.0.clear_region(base, len)
    }

    fn par_map<T, F>(&mut self, procs: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize, &mut dyn MachineProc) -> T + Sync,
    {
        self.0.par_map(procs, f)
    }

    fn seq_step<T, F>(&mut self, f: F) -> T
    where
        F: FnOnce(&mut dyn MachineProc) -> T,
    {
        self.0.seq_step(f)
    }

    fn scan_step(&mut self, base: usize, len: usize) -> u64 {
        self.0.scan_step(base, len)
    }

    fn global_or_step(&mut self, base: usize, len: usize) -> bool {
        self.0.global_or_step(base, len)
    }

    // Delegate to the native override (fused two-pass block compaction),
    // not the trait default — same observable behaviour, no step-count or
    // heap-top drift between the two native schedules.
    fn compact_step(&mut self, src: usize, len: usize, dst: usize) -> u64 {
        self.0.compact_step(src, len, dst)
    }

    fn claim(&mut self, attempts: &[(u64, usize)], mode: ClaimMode) -> Vec<bool> {
        self.0.claim(attempts, mode)
    }

    fn cost_report(&self) -> CostReport {
        self.0.cost_report()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrqw_sim::EMPTY;

    #[test]
    fn every_constructor_is_pinned_to_stealing() {
        assert_eq!(StealingMachine::new(8).0.schedule(), Schedule::Stealing);
        let m: StealingMachine = Machine::with_seed(8, 3);
        assert_eq!(m.0.schedule(), Schedule::Stealing);
        assert_eq!(m.backend(), "native-steal");
        assert_eq!(m.cost_report().backend, "native-steal");
        let m = StealingMachine::with_threads(8, 3, 5);
        assert_eq!(m.0.schedule(), Schedule::Stealing);
        assert_eq!(m.threads(), 5);
    }

    #[test]
    fn steps_claims_and_memory_behave_like_the_chunked_native_machine() {
        let attempts: Vec<(u64, usize)> = (0..5000u64)
            .map(|i| (i + 1, (i as usize * 7) % 2048))
            .collect();
        let mut chunked = NativeMachine::with_threads(2048, 0, 4);
        let mut stealing = StealingMachine::with_threads(2048, 0, 4);
        let a = chunked.claim(&attempts, ClaimMode::Exclusive);
        let b = stealing.claim(&attempts, ClaimMode::Exclusive);
        assert_eq!(a, b);
        assert_eq!(
            chunked.contention().failures(),
            stealing.contention().failures()
        );
        assert_eq!(Machine::steps_executed(&chunked), stealing.steps_executed());
        for addr in 0..2048 {
            assert_eq!(Machine::peek(&chunked, addr), stealing.peek(addr));
        }
        assert!((0..2048).any(|a| stealing.peek(a) == EMPTY));
    }

    #[test]
    fn random_streams_match_the_chunked_machine() {
        let mut chunked = NativeMachine::with_threads(4, 77, 3);
        let mut stealing = StealingMachine::with_threads(4, 77, 3);
        let a = chunked.par_map(5000, |_p, ctx| ctx.random_index(1 << 30));
        let b = stealing.par_map(5000, |_p, ctx| ctx.random_index(1 << 30));
        assert_eq!(a, b);
    }
}
