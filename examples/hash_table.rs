//! Build the paper's two-level hash table (Section 6) for a synthetic key
//! set and answer a mixed batch of membership queries, reporting the
//! contention profile that the duplication technique (Lemma 6.4) produces.
//!
//! Run with `cargo run --release --example hash_table`.

use qrqw_suite::algos::QrqwHashTable;
use qrqw_suite::sim::{CostModel, Pram};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn main() {
    let n = 8192usize;
    let mut rng = SmallRng::seed_from_u64(2024);
    let mut set = std::collections::HashSet::new();
    while set.len() < n {
        set.insert(rng.gen_range(0..(1u64 << 31) - 1));
    }
    let keys: Vec<u64> = set.iter().copied().collect();

    let mut pram = Pram::with_seed(16, 99);
    let table = QrqwHashTable::build(&mut pram, &keys);
    let build = pram.take_trace();
    println!("Built a hash table for {n} keys:");
    println!("  iterations (oblivious rounds) : {}", table.iterations);
    println!(
        "  displacement parameters k     : {}",
        table.displacement_parameters()
    );
    println!("  build work                    : {}", build.work());
    println!(
        "  build time  (qrqw metric)     : {}",
        build.time(CostModel::Qrqw)
    );
    println!(
        "  build max contention          : {}",
        build.max_contention()
    );

    // Half present, half absent queries.
    let mut queries: Vec<u64> = keys.iter().take(n / 2).copied().collect();
    while queries.len() < n {
        let q = rng.gen_range(0..(1u64 << 31) - 1);
        if !set.contains(&q) {
            queries.push(q);
        }
    }
    let answers = table.lookup_batch(&mut pram, &queries);
    let hits = answers.iter().filter(|&&a| a).count();
    let lookup = pram.take_trace();
    println!(
        "\nAnswered {n} membership queries ({hits} hits, {} misses):",
        n - hits
    );
    println!(
        "  lookup time (qrqw metric)     : {}",
        lookup.time(CostModel::Qrqw)
    );
    println!(
        "  lookup time (crcw metric)     : {}",
        lookup.time(CostModel::Crcw)
    );
    println!(
        "  lookup max contention         : {}",
        lookup.max_contention()
    );
    println!("\nThe gap between max contention and n is the whole point: without the");
    println!("duplicated displacement parameters every query hitting the same a_j would");
    println!("queue on one cell and the qrqw lookup time would grow linearly in n.");

    assert_eq!(hits, n / 2);
}
