//! Load balancing (Section 3): balance a skewed task distribution with the
//! QRQW dispersal algorithm and with the EREW prefix-sums baseline, sweeping
//! the maximum initial load L to exhibit the Ω(lg L) dependence the paper
//! proves (Theorem 3.2).
//!
//! Run with `cargo run --release --example load_balancing`.

use qrqw_suite::algos::{load_balance_erew, load_balance_qrqw};
use qrqw_suite::sim::{CostModel, Pram};

fn main() {
    let n = 4096usize;
    println!("Load balancing {n} processors (total tasks ~ n), sweeping the max initial load L\n");
    println!(
        "{:<8} {:>16} {:>16} {:>14} {:>14}",
        "L", "qrqw time", "erew time", "qrqw max load", "erew max load"
    );

    for &l in &[2u64, 8, 32, 128, 512, 2048] {
        let mut loads = vec![0u64; n];
        let heavy = (n as u64 / l).max(1) as usize;
        for item in loads.iter_mut().take(heavy) {
            *item = l;
        }

        let mut a = Pram::with_seed(16, 1);
        let qrqw = load_balance_qrqw(&mut a, &loads);
        assert!(qrqw.covers_exactly(&loads));

        let mut b = Pram::with_seed(16, 1);
        let erew = load_balance_erew(&mut b, &loads);
        assert!(erew.covers_exactly(&loads));

        println!(
            "{:<8} {:>16} {:>16} {:>14} {:>14}",
            l,
            a.trace().time(CostModel::Qrqw),
            b.trace().time(CostModel::Qrqw),
            qrqw.max_final_load,
            erew.max_final_load
        );
    }

    println!("\nThe qrqw column grows with L (the paper's Ω(lg L) lower bound is about");
    println!("exactly this dependence), while the prefix-sums baseline is flat in L but");
    println!("pays its Θ(lg n) on every input, however mild the imbalance.");
}
