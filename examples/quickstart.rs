//! Quickstart: simulate a QRQW PRAM step, compare cost models, and run one
//! of the paper's algorithms end to end.
//!
//! Run with `cargo run --example quickstart`.

use qrqw_suite::algos::{random_permutation_qrqw, random_permutation_sorting_erew};
use qrqw_suite::sim::{CostModel, Pram};

fn main() {
    // --- 1. The model: contention is what you pay for. ---------------------
    let n = 1024usize;
    let mut pram = Pram::new(n);

    // An EREW-friendly step: every processor touches its own cell.
    pram.step(|s| {
        s.par_for(0..n, |p, ctx| {
            ctx.write(p, p as u64);
        });
    });
    // A hot-spot step: every processor reads location 0.
    pram.step(|s| {
        s.par_for(0..n, |_p, ctx| {
            let _ = ctx.read(0);
        });
    });

    println!("Two steps, four cost models:");
    for model in [
        CostModel::Erew,
        CostModel::Qrqw,
        CostModel::Crqw,
        CostModel::Crcw,
    ] {
        println!(
            "  {:<6}  time = {:<6} (violations = {})",
            model.to_string(),
            pram.trace().time(model),
            pram.trace().violations(model)
        );
    }
    println!(
        "  -> the QRQW metric charges the hot spot its full contention ({}), the CRCW metric charges 1.\n",
        pram.trace().max_contention()
    );

    // --- 2. An algorithm from the paper: random permutation. ---------------
    let n = 4096usize;
    let mut qrqw = Pram::with_seed(16, 7);
    let out = random_permutation_qrqw(&mut qrqw, n);
    assert!(qrqw_suite::algos::is_permutation(&out.order));

    let mut erew = Pram::with_seed(16, 7);
    let _ = random_permutation_sorting_erew(&mut erew, n);

    println!("Random permutation of {n} items (simulated SIMD-QRQW time):");
    println!(
        "  qrqw dart-throwing   : time {:>6}   work {:>8}   max contention {}",
        qrqw.trace().time(CostModel::SimdQrqw),
        qrqw.trace().work(),
        qrqw.trace().max_contention()
    );
    println!(
        "  erew sorting-based   : time {:>6}   work {:>8}   max contention {}",
        erew.trace().time(CostModel::SimdQrqw),
        erew.trace().work(),
        erew.trace().max_contention()
    );
    println!(
        "  -> low-contention dart throwing beats the bitonic-sort baseline, Table II's effect."
    );
}
