//! Sorting keys drawn from U(0,1) (Section 7.1) and general keys with the
//! sample-sort of Section 7.2, compared against the bitonic system sort.
//!
//! Run with `cargo run --release --example distributive_sort`.

use qrqw_suite::algos::{sample_sort_qrqw, sort_uniform_keys};
use qrqw_suite::prims::bitonic_sort;
use qrqw_suite::sim::{CostModel, Pram};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn main() {
    let n = 16_384usize;
    let mut rng = SmallRng::seed_from_u64(7);
    let keys: Vec<u64> = (0..n).map(|_| rng.gen_range(0..(1u64 << 31))).collect();

    // U(0,1) distributive sort (Theorem 7.1).
    let mut a = Pram::with_seed(16, 1);
    let sorted = sort_uniform_keys(&mut a, &keys);
    assert!(sorted.windows(2).all(|w| w[0] <= w[1]));

    // General-keys sample sort with the binary-search fat-tree (Theorem 7.3).
    let mut b = Pram::with_seed(16, 2);
    let sorted2 = sample_sort_qrqw(&mut b, &keys);
    assert_eq!(sorted, sorted2);

    // The EREW system sort (bitonic) for comparison.
    let mut c = Pram::with_seed(16, 3);
    let base = c.alloc(n);
    c.memory_mut().load(base, &keys);
    bitonic_sort(&mut c, base, n);

    println!("Sorting {n} uniform keys — simulated cost under the QRQW metric:");
    println!(
        "  {:<36} time {:>7}  work {:>10}  max contention {:>4}",
        "distributive sort (Thm 7.1)",
        a.trace().time(CostModel::Qrqw),
        a.trace().work(),
        a.trace().max_contention()
    );
    println!(
        "  {:<36} time {:>7}  work {:>10}  max contention {:>4}",
        "sample sort + fat tree (Thm 7.3)",
        b.trace().time(CostModel::Qrqw),
        b.trace().work(),
        b.trace().max_contention()
    );
    println!(
        "  {:<36} time {:>7}  work {:>10}  max contention {:>4}",
        "bitonic sort (erew baseline)",
        c.trace().time(CostModel::Qrqw),
        c.trace().work(),
        c.trace().max_contention()
    );
    println!("\nThe distributive sort is the only one of the three with linear work —");
    println!("that is exactly the Table I row for sorting from U(0,1).");
}
