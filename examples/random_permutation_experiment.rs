//! The Section 5.2 experiment, end to end: run the three random-permutation
//! algorithms — the *same* `qrqw-core` sources that drive the simulator —
//! natively through the `Machine` backend API at the paper's two machine
//! sizes and print a Table II-style comparison.
//!
//! Run with `cargo run --release --example random_permutation_experiment`.

use std::time::Instant;

use qrqw_suite::algos::{
    random_permutation_dart_scan, random_permutation_qrqw, random_permutation_sorting_erew,
    PermutationOutcome,
};
use qrqw_suite::exec::NativeMachine;
use qrqw_suite::sim::Machine;

type Algo = fn(&mut NativeMachine, usize) -> PermutationOutcome;

fn average_ms(reps: u64, n: usize, f: Algo) -> (f64, f64) {
    let mut m = NativeMachine::with_seed(16, 0);
    let _ = f(&mut m, n); // warm-up
    let start = Instant::now();
    let mut contended = 0u64;
    for r in 0..reps {
        let mut m = NativeMachine::with_seed(16, r + 1);
        let _ = f(&mut m, n);
        contended += m.cost_report().contended_claims;
    }
    (
        start.elapsed().as_secs_f64() * 1000.0 / reps as f64,
        contended as f64 / reps as f64,
    )
}

fn main() {
    let reps: u64 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("repetitions"))
        .unwrap_or(50);
    println!(
        "Random permutation on the MasPar MP-1 — reproduced on {} threads, {reps} repetitions\n",
        rayon::current_num_threads()
    );
    println!("{:<30} {:>12} {:>12}", "Algorithm", "16K items", "1K items");

    let table: Vec<(&str, Algo)> = vec![
        ("Sorting-based (erew)", |m, n| {
            random_permutation_sorting_erew(m, n)
        }),
        ("Dart-throwing with scans", |m, n| {
            random_permutation_dart_scan(m, n)
        }),
        ("Dart-throwing for qrqw", |m, n| {
            random_permutation_qrqw(m, n)
        }),
    ];

    for (label, f) in &table {
        let (big, _) = average_ms(reps, 16_384, *f);
        let (small, _) = average_ms(reps, 1_024, *f);
        println!("{label:<30} {big:>9.3} ms {small:>9.3} ms");
    }

    println!("\nContention diagnostics (average contended claim attempts per run, 16K items):");
    for (label, f) in &table {
        let (_, contended) = average_ms(reps.min(20), 16_384, *f);
        println!("  {label:<30} {contended:>10.1}");
    }
    println!("\nPaper (Table II): 11.25 / 10.01, 8.02 / 6.05, 7.57 / 2.88 ms — the qrqw dart thrower wins in both columns.");
}
