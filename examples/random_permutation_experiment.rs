//! The Section 5.2 experiment, end to end: run the three random-permutation
//! algorithms natively (rayon + atomics) at the paper's two machine sizes
//! and print a Table II-style comparison.
//!
//! Run with `cargo run --release --example random_permutation_experiment`.

use std::time::Instant;

use qrqw_suite::exec::{
    dart_qrqw_permutation, dart_scan_permutation, sorting_based_permutation,
};

fn average_ms(reps: u64, f: impl Fn(u64) -> qrqw_suite::exec::NativeOutcome) -> (f64, f64) {
    let _ = f(0); // warm-up
    let start = Instant::now();
    let mut contended = 0u64;
    for r in 0..reps {
        contended += f(r + 1).contended_attempts;
    }
    (
        start.elapsed().as_secs_f64() * 1000.0 / reps as f64,
        contended as f64 / reps as f64,
    )
}

fn main() {
    let reps: u64 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("repetitions"))
        .unwrap_or(50);
    println!("Random permutation on the MasPar MP-1 — reproduced on {} threads, {reps} repetitions\n", rayon::current_num_threads());
    println!("{:<30} {:>12} {:>12}", "Algorithm", "16K items", "1K items");

    let mut table: Vec<(&str, Box<dyn Fn(usize, u64) -> qrqw_suite::exec::NativeOutcome>)> = Vec::new();
    table.push(("Sorting-based (erew)", Box::new(sorting_based_permutation)));
    table.push(("Dart-throwing with scans", Box::new(dart_scan_permutation)));
    table.push(("Dart-throwing for qrqw", Box::new(dart_qrqw_permutation)));

    for (label, f) in &table {
        let (big, _) = average_ms(reps, |s| f(16_384, s));
        let (small, _) = average_ms(reps, |s| f(1_024, s));
        println!("{label:<30} {big:>9.3} ms {small:>9.3} ms");
    }

    println!("\nContention diagnostics (average contended CAS attempts per run, 16K items):");
    for (label, f) in &table {
        let (_, contended) = average_ms(reps.min(20), |s| f(16_384, s));
        println!("  {label:<30} {contended:>10.1}");
    }
    println!("\nPaper (Table II): 11.25 / 10.01, 8.02 / 6.05, 7.57 / 2.88 ms — the qrqw dart thrower wins in both columns.");
}
